"""Versioned replica storage and timestamps (Section 2.2).

The paper's timestamps consist of a *version number* and an *SID*.  A read
returns the value whose timestamp has the highest version number and, among
equal versions, the **lowest** site identifier (Section 3.2.1); a write
obtains the current highest version number and increments it by one
(Section 3.2.2).  :class:`Timestamp` encodes exactly that dominance order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Timestamp:
    """A (version, SID) timestamp with the paper's dominance order.

    ``a.dominates(b)`` iff ``a`` has a strictly higher version, or an equal
    version and a strictly *lower* SID — the value a reader must prefer.
    The zero timestamp ``Timestamp(0, -1)`` predates every write.
    """

    version: int
    sid: int

    def dominates(self, other: "Timestamp") -> bool:
        """True iff this timestamp should be preferred over ``other``."""
        if self.version != other.version:
            return self.version > other.version
        return self.sid < other.sid

    def sort_key(self) -> tuple[int, int]:
        """Key under which ``max`` picks the dominant timestamp."""
        return (self.version, -self.sid)

    def next_version(self, writer_sid: int) -> "Timestamp":
        """The timestamp a writer stamps after reading this one."""
        return Timestamp(version=self.version + 1, sid=writer_sid)

    def __str__(self) -> str:
        return f"v{self.version}@{self.sid}"


#: The timestamp of never-written data.
ZERO_TIMESTAMP = Timestamp(version=0, sid=-1)


def dominant(timestamps: list[Timestamp]) -> Timestamp:
    """The dominant timestamp of a non-empty list."""
    if not timestamps:
        raise ValueError("need at least one timestamp")
    return max(timestamps, key=Timestamp.sort_key)


@dataclass
class StoredValue:
    """One versioned datum held by a replica."""

    value: Any
    timestamp: Timestamp


class VersionedStore:
    """Per-site key/value storage with timestamp-guarded writes.

    Storage survives crashes (the paper's failures are transient; sites
    recover with their stable storage intact).  Writes are *monotone*: a
    value is only installed when its timestamp dominates the stored one, so
    replayed or reordered 2PC commits cannot roll a replica backwards.
    """

    def __init__(self) -> None:
        self._data: dict[Any, StoredValue] = {}
        self._applied_writes = 0
        self._ignored_writes = 0

    def read(self, key: Any) -> StoredValue:
        """Current value+timestamp, or the zero timestamp if never written."""
        entry = self._data.get(key)
        if entry is None:
            return StoredValue(value=None, timestamp=ZERO_TIMESTAMP)
        return entry

    def version_of(self, key: Any) -> Timestamp:
        """Current timestamp of ``key``."""
        return self.read(key).timestamp

    def apply_write(self, key: Any, value: Any, timestamp: Timestamp) -> bool:
        """Install ``value`` iff ``timestamp`` dominates the stored one.

        Returns True when the write was applied, False when it was stale
        and ignored.
        """
        current = self.read(key).timestamp
        if not timestamp.dominates(current):
            self._ignored_writes += 1
            return False
        self._data[key] = StoredValue(value=value, timestamp=timestamp)
        self._applied_writes += 1
        return True

    def keys(self) -> list:
        """All keys ever written."""
        return list(self._data)

    @property
    def applied_writes(self) -> int:
        """Number of writes installed."""
        return self._applied_writes

    @property
    def ignored_writes(self) -> int:
        """Number of stale writes rejected by the timestamp guard."""
        return self._ignored_writes

    def __len__(self) -> int:
        return len(self._data)
