"""Baseline replica control protocols the paper compares against.

Each protocol is exposed as a :class:`~repro.protocols.base.ProtocolModel`
with analytic communication cost, availability and optimal system load, plus
explicit quorum enumeration for sizes small enough to cross-check against
the LP machinery of :mod:`repro.quorums`.

* :mod:`repro.protocols.rowa` — Read-One/Write-All [3];
* :mod:`repro.protocols.majority` — majority voting [13];
* :mod:`repro.protocols.tree_quorum` — Agrawal-El Abbadi binary tree quorums
  [2], the paper's **BINARY** configuration;
* :mod:`repro.protocols.hqc` — Kumar's Hierarchical Quorum Consensus [8],
  the paper's **HQC** configuration;
* :mod:`repro.protocols.grid` — the grid protocol [4];
* :mod:`repro.protocols.fpp` — Maekawa's sqrt(n) / finite-projective-plane
  protocol [9];
* :mod:`repro.protocols.agrawal_tree` — the original Agrawal-El Abbadi tree
  protocol for replicated data [1].

Every protocol implements the unified
:class:`~repro.quorums.system.QuorumSystem` interface, and
:mod:`repro.protocols.zoo` builds all of them (plus the paper's arbitrary
protocol) at a requested replica count.
"""

from repro.protocols.agrawal_tree import AgrawalTreeProtocol
from repro.protocols.base import ProtocolModel
from repro.protocols.fpp import FiniteProjectivePlaneProtocol
from repro.protocols.grid import GridProtocol
from repro.protocols.hqc import HQCProtocol
from repro.protocols.majority import MajorityProtocol
from repro.protocols.rowa import RowaProtocol
from repro.protocols.tree_quorum import TreeQuorumProtocol
from repro.protocols.zoo import PROTOCOL_NAMES, quorum_system, quorum_systems

__all__ = [
    "AgrawalTreeProtocol",
    "FiniteProjectivePlaneProtocol",
    "GridProtocol",
    "HQCProtocol",
    "MajorityProtocol",
    "PROTOCOL_NAMES",
    "ProtocolModel",
    "RowaProtocol",
    "TreeQuorumProtocol",
    "quorum_system",
    "quorum_systems",
]
