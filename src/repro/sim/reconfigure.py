"""Tree reconfiguration: the paper's "spectrum shifting" claim, online.

"Our protocol enables the shifting from one configuration into another by
just modifying the structure of the tree.  There is no need to implement a
new protocol whenever the frequencies of read and write operations change."
(Conclusion.)  The paper does not define a transition protocol, so this
module supplies the missing piece — in two modes sharing one state-transfer
core.

The subtlety is that quorums of *different* trees need not intersect: a
value written through an old-tree write quorum may be invisible to every
new-tree read quorum.  Both modes therefore re-write every key through
write quorums the *new* tree recognises before the switch, using an atomic
per-key **copy** operation (:meth:`QuorumCoordinator.copy_key`: one
exclusive lock covering the read and the re-write, so no client write can
interleave and be resurrected-over).

**Quiescent mode** (:meth:`TreeReconfigurer.reconfigure`) is the legacy
stop-the-world path, now actually enforced: the whole coordinator *pool*
(every coordinator sharing the driver's lock manager) is paused for the
migration window — submissions arriving mid-migration are deferred whole
and replayed, in order and against the new tree, at resume.  Quiescence is
checked group-wide; ``wait=True`` pauses first and lets in-flight traffic
drain instead of refusing.

**Online mode** (:meth:`TreeReconfigurer.reconfigure_online`) never stops
traffic.  It drives a per-group epoch state machine::

    STABLE ──start──▶ TRANSITION ──commit──▶ STABLE (new tree)
                          │
                          └────rollback────▶ STABLE (old tree)

Entering TRANSITION swaps every pool coordinator onto a
:class:`~repro.quorums.dual.DualQuorumSystem`: reads select quorums
intersecting *both* trees' write quorums, writes land on *both* trees'
write quorums, so the bi-coterie intersection invariant holds across the
boundary while clients keep reading and writing.  Keys are then copied
under the dual system; on success the group swaps to the new tree, on any
per-key failure it swaps back to the old one (``rolled_back=True``) — safe
in both directions because every transition-epoch write is visible to both
trees' read quorums.  Every epoch edge bumps the network liveness epoch
and flushes the lease cache, so no :class:`LeaseCache` entry or
:class:`SelectionIndex` live-set cache can leak across trees, and the
:class:`~repro.fault.invariants.InvariantChecker` (when attached) is told
about each edge so audited outcomes are attributed to their epoch.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.protocol import ArbitraryProtocol
from repro.core.tree import ArbitraryTree
from repro.quorums.dual import DualQuorumSystem
from repro.quorums.system import QuorumSystem
from repro.sim.coordinator import OperationOutcome, QuorumCoordinator

if TYPE_CHECKING:
    from repro.fault.invariants import InvariantChecker

#: Simulated-time interval between group-drain polls (``wait=True``).
DRAIN_POLL = 1.0


class ReconfigStatus(enum.Enum):
    """Terminal states of a reconfiguration run."""

    SUCCESS = "success"
    NOT_QUIESCENT = "coordinator-not-quiescent"
    READ_FAILED = "key-read-failed"
    WRITE_FAILED = "key-write-failed"
    BAD_TREE = "tree-replica-mismatch"
    IN_PROGRESS = "reconfiguration-already-running"


class EpochState(enum.Enum):
    """Where the group's epoch state machine currently stands."""

    STABLE = "stable"
    TRANSITION = "transition"


@dataclass
class ReconfigOutcome:
    """What a reconfiguration did."""

    status: ReconfigStatus
    new_tree: ArbitraryTree
    keys_migrated: int = 0
    keys_total: int = 0
    failed_key: Any = None
    started_at: float = 0.0
    finished_at: float = 0.0
    operations_used: int = 0
    #: ``"quiescent"`` (stop-the-world) or ``"online"`` (dual-quorum).
    mode: str = "quiescent"
    #: The reconfiguration epoch this run drove (0 = never transitioned).
    epoch: int = 0
    #: True when an online transition failed and the group was cleanly
    #: returned to the old tree.
    rolled_back: bool = False

    @property
    def success(self) -> bool:
        """True iff the quorum-system switch happened."""
        return self.status is ReconfigStatus.SUCCESS

    @property
    def duration(self) -> float:
        """Simulated time the migration took."""
        return self.finished_at - self.started_at


DoneCallback = Callable[[ReconfigOutcome], None]


@dataclass
class _MigrationState:
    new_tree: ArbitraryTree
    new_system: QuorumSystem
    keys: list
    on_done: DoneCallback
    outcome: ReconfigOutcome
    online: bool
    old_system: QuorumSystem | None = None
    index: int = 0
    #: Quiescent-mode migration outcomes awaiting the commit decision:
    #: fed to the invariant checker only if the migration succeeds (an
    #: aborted quiescent migration leaves version-bumped copies on
    #: new-tree levels that old-tree audits must not be judged against).
    audited: list[OperationOutcome] = field(default_factory=list)


class TreeReconfigurer:
    """Drives tree-shape migrations for one coordinator *pool*.

    Parameters
    ----------
    coordinator:
        The driving coordinator.  The swap applies to every coordinator
        registered on the same network that shares this coordinator's
        lock manager — the whole pool, never one member (a pool peer left
        on the old tree keeps issuing old-tree writes whose quorums need
        not intersect new-tree reads).
    invariants:
        Optional :class:`~repro.fault.invariants.InvariantChecker`.  When
        attached it is notified of every epoch edge, and migration
        outcomes are audited exactly like client traffic (buffered until
        commit in quiescent mode).
    """

    def __init__(
        self,
        coordinator: QuorumCoordinator,
        invariants: "InvariantChecker | None" = None,
    ) -> None:
        self._coordinator = coordinator
        self._invariants = invariants
        self._active = False
        self._epoch = 0
        self._state = EpochState.STABLE

    @property
    def epoch(self) -> int:
        """Completed-or-attempted transitions so far."""
        return self._epoch

    @property
    def state(self) -> EpochState:
        """The group's current epoch state."""
        return self._state

    # ------------------------------------------------------------------
    # group plumbing
    # ------------------------------------------------------------------

    def group(self) -> list[QuorumCoordinator]:
        """Every pool member: coordinators sharing the driver's locks."""
        driver = self._coordinator
        return [
            peer
            for peer in driver.network.coordinators()
            if peer.locks is driver.locks
        ]

    def _group_quiescent(self, group: list[QuorumCoordinator]) -> bool:
        return (
            all(peer.is_quiescent() for peer in group)
            and self._coordinator.locks.idle
        )

    def _swap_group(self, system: QuorumSystem) -> None:
        """Install ``system`` on every pool member and fence the caches.

        The driver builds the (possibly shared) selection index once and
        peers adopt it; the liveness-epoch bump drops every epoch-stamped
        lease, batched pre-selected quorum and cached live set, and the
        lease flush is belt-and-braces on top (no lease granted against
        one tree may ever answer under another).
        """
        driver = self._coordinator
        driver.set_system(system)
        group = self.group()
        for peer in group:
            if peer is not driver:
                peer.set_system(system, selector=driver.selector)
        driver.network.bump_liveness_epoch()
        flushed: set[int] = set()
        for peer in group:
            cache = peer.leases
            if cache is not None and id(cache) not in flushed:
                flushed.add(id(cache))
                cache.flush()

    def _note_epoch(self, state: EpochState) -> None:
        self._state = state
        if self._invariants is not None:
            self._invariants.note_epoch(
                self._epoch, state.value, at=self._coordinator.scheduler.now
            )

    def _precheck(
        self, new_tree: ArbitraryTree, outcome: ReconfigOutcome
    ) -> ReconfigStatus | None:
        """Synchronous refusals, reported through ``on_done`` by callers."""
        if self._active:
            return ReconfigStatus.IN_PROGRESS
        if new_tree.n != len(self._coordinator.system_universe()):
            return ReconfigStatus.BAD_TREE
        return None

    # ------------------------------------------------------------------
    # quiescent (stop-the-world) mode
    # ------------------------------------------------------------------

    def reconfigure(
        self,
        new_tree: ArbitraryTree,
        keys: Sequence,
        on_done: DoneCallback,
        wait: bool = False,
    ) -> None:
        """Stop-the-world migration to ``new_tree``; ``on_done`` fires once.

        ``keys`` must cover every key whose latest value matters (the
        engine's workload uses a known key space; a production system
        would scan the keyspace).  The new tree must host the same
        replica SIDs ``0..n-1`` — reconfiguration changes the *shape*,
        not the fleet (a mismatch reports ``BAD_TREE``).

        The pool is paused for the whole window: submissions arriving
        mid-migration are deferred and replayed at completion, so the
        one-shot quiescence check can no longer be raced.  With the
        default ``wait=False`` a non-quiescent group is refused
        synchronously (``NOT_QUIESCENT``); with ``wait=True`` the pool is
        paused immediately and the migration starts once in-flight
        traffic has drained.
        """
        now = self._coordinator.scheduler.now
        outcome = ReconfigOutcome(
            status=ReconfigStatus.SUCCESS,
            new_tree=new_tree,
            keys_total=len(keys),
            started_at=now,
            finished_at=now,
            mode="quiescent",
            epoch=self._epoch,
        )
        refusal = self._precheck(new_tree, outcome)
        if refusal is not None:
            outcome.status = refusal
            on_done(outcome)
            return
        group = self.group()
        if not wait and not self._group_quiescent(group):
            outcome.status = ReconfigStatus.NOT_QUIESCENT
            on_done(outcome)
            return
        self._active = True
        for peer in group:
            peer.pause()
        state = _MigrationState(
            new_tree=new_tree,
            new_system=ArbitraryProtocol(new_tree),
            keys=list(keys),
            on_done=on_done,
            outcome=outcome,
            online=False,
        )
        if self._group_quiescent(group):
            self._migrate_next(state)
        else:
            self._await_drain(state)

    def _await_drain(self, state: _MigrationState) -> None:
        """``wait=True``: poll until the paused pool has drained.

        New submissions are already deferred by the pause, so the
        in-flight count is strictly non-increasing and the poll always
        terminates (lock waits time out, operations finish or fail).
        """
        if self._group_quiescent(self.group()):
            self._migrate_next(state)
            return
        self._coordinator.scheduler.schedule(
            DRAIN_POLL, lambda: self._await_drain(state)
        )

    # ------------------------------------------------------------------
    # online (dual-quorum) mode
    # ------------------------------------------------------------------

    def reconfigure_online(
        self,
        new_tree: ArbitraryTree,
        keys: Sequence,
        on_done: DoneCallback,
    ) -> None:
        """Migrate to ``new_tree`` with client traffic still flowing.

        The group enters the TRANSITION epoch on a
        :class:`DualQuorumSystem` over (current, new): every client read
        intersects both trees' write quorums and every client write lands
        on both trees' write quorums, so no interleaving can violate the
        bi-coterie invariant in either the commit or the rollback
        direction.  Keys are copied under the dual system (atomic per-key
        read/re-write), then the group commits to the new tree — or rolls
        back to the old one on a per-key failure, reporting
        ``rolled_back=True`` with the failing stage's status.
        """
        now = self._coordinator.scheduler.now
        outcome = ReconfigOutcome(
            status=ReconfigStatus.SUCCESS,
            new_tree=new_tree,
            keys_total=len(keys),
            started_at=now,
            finished_at=now,
            mode="online",
            epoch=self._epoch,
        )
        refusal = self._precheck(new_tree, outcome)
        if refusal is not None:
            outcome.status = refusal
            on_done(outcome)
            return
        self._active = True
        old_system = self._coordinator.system
        new_system: QuorumSystem = ArbitraryProtocol(new_tree)
        self._epoch += 1
        outcome.epoch = self._epoch
        self._swap_group(DualQuorumSystem(old_system, new_system))
        self._note_epoch(EpochState.TRANSITION)
        state = _MigrationState(
            new_tree=new_tree,
            new_system=new_system,
            keys=list(keys),
            on_done=on_done,
            outcome=outcome,
            online=True,
            old_system=old_system,
        )
        self._migrate_next(state)

    # ------------------------------------------------------------------
    # per-key state transfer (shared by both modes)
    # ------------------------------------------------------------------

    def _migrate_next(self, state: _MigrationState) -> None:
        if state.index >= len(state.keys):
            self._finish(state)
            return
        key = state.keys[state.index]
        state.outcome.operations_used += 1
        # Online mode copies under the active (dual) system; quiescent
        # mode reads through the old tree and re-writes through the new
        # tree's write quorums — both as ONE exclusive-locked operation.
        self._coordinator.copy_key(
            key,
            lambda result: self._copy_done(state, key, result),
            write_system=None if state.online else state.new_system,
        )

    def _copy_done(
        self, state: _MigrationState, key: Any, result: OperationOutcome
    ) -> None:
        if not result.success:
            state.outcome.status = (
                ReconfigStatus.READ_FAILED
                if result.failed_stage == "read"
                else ReconfigStatus.WRITE_FAILED
            )
            state.outcome.failed_key = key
            self._finish(state)
            return
        if result.value is not None:
            # (A None value means the key was never written: nothing was
            # transferred and nothing is auditable.)
            state.outcome.keys_migrated += 1
            if self._invariants is not None:
                if state.online:
                    self._invariants.check(result)
                else:
                    state.audited.append(result)
        state.index += 1
        self._migrate_next(state)

    def _finish(self, state: _MigrationState) -> None:
        success = state.outcome.status is ReconfigStatus.SUCCESS
        if state.online:
            if success:
                self._swap_group(state.new_system)
            else:
                assert state.old_system is not None
                self._swap_group(state.old_system)
                state.outcome.rolled_back = True
            self._note_epoch(EpochState.STABLE)
        else:
            if success:
                self._swap_group(state.new_system)
                if self._invariants is not None:
                    for audited in state.audited:
                        self._invariants.check(audited)
            # A failed quiescent migration leaves the old tree active:
            # migrated keys were *added* to new-tree levels, which never
            # invalidates old-tree reads.
            for peer in self.group():
                peer.resume()
        self._active = False
        state.outcome.finished_at = self._coordinator.scheduler.now
        state.on_done(state.outcome)
