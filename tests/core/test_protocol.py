"""Unit tests for read/write quorum construction (Section 3.2)."""

import random

import pytest

from repro.core.builder import from_spec, mostly_read, recommended_tree
from repro.core.protocol import ArbitraryProtocol
from repro.quorums.base import is_cross_intersecting


@pytest.fixture
def protocol():
    return ArbitraryProtocol(from_spec("1-3-5"))


class TestQuorumCounts:
    def test_fact_321_read_count(self, protocol):
        assert protocol.num_read_quorums == 15

    def test_fact_322_write_count(self, protocol):
        assert protocol.num_write_quorums == 2

    def test_enumerated_counts_match(self, protocol):
        assert len(list(protocol.read_quorums())) == 15
        assert len(protocol.write_quorums()) == 2

    def test_counts_for_deeper_tree(self):
        protocol = ArbitraryProtocol(from_spec("1-2-3-4"))
        assert protocol.num_read_quorums == 24
        assert protocol.num_write_quorums == 3


class TestQuorumShape:
    def test_read_quorums_pick_one_per_level(self, protocol):
        tree = protocol.tree
        for quorum in protocol.read_quorums():
            assert len(quorum) == tree.num_physical_levels
            for k in tree.physical_levels:
                assert len(quorum & set(tree.replica_ids_at(k))) == 1

    def test_read_quorums_are_distinct(self, protocol):
        quorums = list(protocol.read_quorums())
        assert len(set(quorums)) == len(quorums)

    def test_write_quorums_are_whole_levels(self, protocol):
        assert protocol.write_quorums() == (
            frozenset({0, 1, 2}),
            frozenset({3, 4, 5, 6, 7}),
        )

    def test_read_quorum_at_choices(self, protocol):
        quorum = protocol.read_quorum_at([2, 4])
        assert quorum == frozenset({2, 7})

    def test_read_quorum_at_validates_length(self, protocol):
        with pytest.raises(ValueError, match="one choice per"):
            protocol.read_quorum_at([0])

    def test_universe(self, protocol):
        assert protocol.universe == frozenset(range(8))


class TestBicoterieProperty:
    def test_explicit_materialisation(self, protocol):
        bc = protocol.bicoterie()
        assert len(bc.read_quorums) == 15
        assert len(bc.write_quorums) == 2

    def test_materialisation_guard(self):
        protocol = ArbitraryProtocol(recommended_tree(100))
        with pytest.raises(ValueError, match="exceed"):
            protocol.bicoterie(max_read_quorums=10)

    def test_cross_intersection(self, protocol):
        assert is_cross_intersecting(
            protocol.read_quorums(), protocol.write_quorums()
        )

    def test_is_bicoterie_shortcut(self, protocol):
        assert protocol.is_bicoterie()


class TestUniformStrategies:
    def test_weights(self, protocol):
        assert protocol.uniform_read_weight() == pytest.approx(1 / 15)
        assert protocol.uniform_write_weight() == pytest.approx(1 / 2)

    def test_sampling_is_uniform_per_level(self, protocol):
        rng = random.Random(0)
        counts = {sid: 0 for sid in range(8)}
        trials = 6000
        for _ in range(trials):
            for sid in protocol.sample_read_quorum(rng):
                counts[sid] += 1
        for sid in range(3):  # level of 3: each picked ~1/3 of the time
            assert counts[sid] / trials == pytest.approx(1 / 3, abs=0.05)
        for sid in range(3, 8):  # level of 5
            assert counts[sid] / trials == pytest.approx(1 / 5, abs=0.05)

    def test_sample_write_quorum_is_a_level(self, protocol):
        rng = random.Random(1)
        for _ in range(20):
            assert protocol.sample_write_quorum(rng) in protocol.write_quorums()


class TestFailureAwareSelection:
    def test_all_live_deterministic(self, protocol):
        quorum = protocol.select_read_quorum(set(range(8)))
        assert quorum == frozenset({0, 3})  # first live per level

    def test_read_routes_around_failures(self, protocol):
        quorum = protocol.select_read_quorum({2, 5})
        assert quorum == frozenset({2, 5})

    def test_read_fails_when_level_dead(self, protocol):
        assert protocol.select_read_quorum({3, 4, 5, 6, 7}) is None

    def test_write_prefers_smallest_live_level(self, protocol):
        assert protocol.select_write_quorum(set(range(8))) == frozenset({0, 1, 2})

    def test_write_uses_other_level_on_failure(self, protocol):
        live = {1, 2, 3, 4, 5, 6, 7}  # replica 0 down
        assert protocol.select_write_quorum(live) == frozenset(range(3, 8))

    def test_write_fails_when_every_level_broken(self, protocol):
        assert protocol.select_write_quorum({0, 1, 3, 4, 5, 6}) is None

    def test_oracle_callable_accepted(self, protocol):
        quorum = protocol.select_read_quorum(lambda sid: sid % 2 == 0)
        assert quorum is not None
        assert all(sid % 2 == 0 for sid in quorum)

    def test_randomised_selection_only_picks_live(self, protocol):
        rng = random.Random(3)
        live = {0, 2, 4, 6, 7}
        for _ in range(50):
            quorum = protocol.select_read_quorum(live, rng)
            assert quorum is not None and quorum <= live

    def test_rowa_degenerate_case(self):
        protocol = ArbitraryProtocol(mostly_read(5))
        assert protocol.num_read_quorums == 5
        assert protocol.num_write_quorums == 1
        assert protocol.select_write_quorum({0, 1, 2, 3}) is None  # one down

    def test_repr(self, protocol):
        assert "m_R=15" in repr(protocol)
