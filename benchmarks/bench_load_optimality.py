"""Appendix 6: LP verification of the closed-form optimal loads.

For a family of tree shapes, enumerate the protocol's read and write quorum
systems explicitly, solve the Naor-Wool load LP, and check the optimum
equals the closed forms ``L_RD = 1/d`` and ``L_WR = 1/|K_phy|`` — i.e. the
appendix's hand-constructed strategies and witnesses are genuinely optimal.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core.builder import from_spec
from repro.core.metrics import read_load, write_load
from repro.core.protocol import ArbitraryProtocol
from repro.quorums.load import optimal_load, verify_load_witness

SPECS = (
    "1-3-5",
    "1-2-2-2",
    "1-4-4-4",
    "1-2-3-4",
    "1-5",
    "1-8",
    "P1-2-4",
    "P1-3-9",
    "1-2-2-2-2-2",
    "1-3-3-6",
)


@pytest.fixture(scope="module")
def lp_results():
    results = {}
    for spec in SPECS:
        tree = from_spec(spec)
        protocol = ArbitraryProtocol(tree)
        read_lp = optimal_load(
            list(protocol.read_quorums()), universe=protocol.universe
        )
        write_lp = optimal_load(
            protocol.write_quorums(), universe=protocol.universe
        )
        results[spec] = (tree, read_lp, write_lp)
    return results


def test_load_optimality_table(lp_results, emit, benchmark):
    def solve_one():
        tree = from_spec("1-3-5")
        protocol = ArbitraryProtocol(tree)
        return optimal_load(
            list(protocol.read_quorums()), universe=protocol.universe
        ).load

    benchmark(solve_one)
    rows = []
    for spec, (tree, read_lp, write_lp) in lp_results.items():
        rows.append([
            spec,
            round(read_load(tree), 5), round(read_lp.load, 5),
            round(write_load(tree), 5), round(write_lp.load, 5),
        ])
    emit(
        "load_optimality",
        format_table(
            ["tree", "1/d", "LP read load", "1/|K_phy|", "LP write load"],
            rows,
            title="Appendix 6: closed-form loads vs LP optimum",
        ),
    )


def test_read_loads_match_lp(lp_results):
    for spec, (tree, read_lp, _write_lp) in lp_results.items():
        assert read_lp.load == pytest.approx(read_load(tree), abs=1e-6), spec


def test_write_loads_match_lp(lp_results):
    for spec, (tree, _read_lp, write_lp) in lp_results.items():
        assert write_lp.load == pytest.approx(write_load(tree), abs=1e-6), spec


def test_lp_witnesses_verify(lp_results):
    for spec, (_tree, read_lp, write_lp) in lp_results.items():
        assert read_lp.verify(), spec
        assert write_lp.verify(), spec


def test_paper_witness_construction(lp_results):
    """Re-build the appendix's explicit dual witnesses and verify them.

    Reads (6.1.2): put mass 1/d on each replica of the thinnest physical
    level.  Writes (6.2.2): put mass 1/|K_phy| on one replica per physical
    level.
    """
    for spec, (tree, read_lp, write_lp) in lp_results.items():
        protocol = ArbitraryProtocol(tree)
        thinnest = min(tree.physical_levels, key=tree.m_phy)
        read_witness = {
            sid: 1.0 / tree.d for sid in tree.replica_ids_at(thinnest)
        }
        assert verify_load_witness(
            read_lp.strategy.system, read_witness, read_load(tree)
        ), spec
        write_witness = {
            tree.replica_ids_at(k)[0]: 1.0 / tree.num_physical_levels
            for k in tree.physical_levels
        }
        assert verify_load_witness(
            write_lp.strategy.system, write_witness, write_load(tree)
        ), spec
        assert protocol.is_bicoterie()
