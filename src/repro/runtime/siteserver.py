"""One replica site served over TCP — the ``repro serve`` entry point.

A :class:`SiteServer` owns a *real* :class:`repro.sim.site.Site` — the
same class the simulator runs, with its versioned store, 2PC prepare log
and recovery protocol — and exposes it on a listening socket.  The site
itself is wired to a :class:`_SitePeerTransport`, a seam implementation
whose ``send`` routes outbound messages (replies, votes, acks, recovery
``DecisionRequest``\\ s) to whichever connection the destination SID
arrived on.

Connection protocol: a connecting peer (the coordinator front-end) first
sends a ``hello`` control frame carrying its own SID; every later frame
is a protocol message for this site.  Replies flow back on the same
connection.  A peer that disconnects is forgotten — messages to it drop,
exactly like the simulator's delivery-time liveness check.

Crash injection: the *real* chaos mode SIGKILLs the whole process (see
:mod:`repro.runtime.cluster`).  For in-process tests, :meth:`crash`
models the same observable event — the site stops answering and its
connections drop — while :meth:`recover` restores service with stable
storage intact and runs the site's 2PC termination protocol.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Any

from repro.runtime.clock import AsyncClock
from repro.runtime.codec import (
    CodecError,
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)
from repro.runtime.interfaces import Clock, Endpoint
from repro.sim.site import Site


class _SitePeerTransport:
    """The seam as seen from inside one site process.

    Outbound routing is by destination SID -> live connection; liveness
    epochs are a local counter (each process observes its own site's
    transitions — remote liveness is the coordinator transport's job).
    """

    def __init__(self, clock: Clock, server: "SiteServer") -> None:
        self._clock = clock
        self._server = server
        self._endpoints: dict[int, Endpoint] = {}
        self._liveness_epoch = 0

    @property
    def clock(self) -> Clock:
        return self._clock

    def register(self, sid: int, endpoint: Endpoint) -> None:
        if sid in self._endpoints:
            raise ValueError(f"SID {sid} already registered")
        self._endpoints[sid] = endpoint

    def current_liveness_epoch(self) -> int:
        return self._liveness_epoch

    def bump_liveness_epoch(self) -> None:
        self._liveness_epoch += 1

    def send(self, message: Any) -> None:
        self._server.route(message)

    def broadcast(self, messages: list) -> None:
        for message in messages:
            self.send(message)


class SiteServer:
    """Serve one replica site on a TCP port."""

    def __init__(
        self,
        sid: int,
        host: str = "127.0.0.1",
        port: int = 0,
        service_time: float = 0.0,
    ) -> None:
        self.sid = sid
        self._host = host
        self._port = port
        self._service_time = service_time
        self._server: asyncio.base_events.Server | None = None
        self._writers: dict[int, asyncio.StreamWriter] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._accepting = True
        self.site: Site | None = None
        self.transport: _SitePeerTransport | None = None

    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when ``port=0``)."""
        return self._port

    async def start(self) -> None:
        """Bind the socket and wire the site to the peer transport."""
        clock = AsyncClock(asyncio.get_running_loop())
        self.transport = _SitePeerTransport(clock, self)
        self.site = Site(
            self.sid, self.transport, service_time=self._service_time
        )
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, drop every connection, release the port."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._drop_connections()
        for task in list(self._conn_tasks):
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task

    # -- crash / recovery (in-process fault injection) -----------------

    def crash(self) -> None:
        """Fail-stop the site and sever its connections.

        Observably identical to SIGKILL from the coordinator's side: the
        connection drops and nothing answers until :meth:`recover`.
        """
        self._accepting = False
        assert self.site is not None
        self.site.crash()
        self._drop_connections()

    def recover(self) -> None:
        """Resume service (stable storage intact, 2PC termination runs)."""
        self._accepting = True
        assert self.site is not None
        self.site.recover()

    def _drop_connections(self) -> None:
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()

    # -- outbound ------------------------------------------------------

    def route(self, message: Any) -> None:
        """Deliver an outbound protocol message to its peer connection."""
        writer = self._writers.get(message.dst)
        if writer is None or writer.is_closing():
            return  # peer gone: drop, the quorum layer tolerates loss
        try:
            write_frame(writer, encode_message(message))
        except (ConnectionError, CodecError):
            self._writers.pop(message.dst, None)

    # -- inbound -------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        peer_sid: int | None = None
        try:
            hello = await read_frame(reader)
            if (
                not self._accepting
                or hello is None
                or hello.get("kind") != "hello"
                or not isinstance(hello.get("sid"), int)
            ):
                return
            peer_sid = hello["sid"]
            self._writers[peer_sid] = writer
            write_frame(writer, {"kind": "hello", "sid": self.sid})
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    return
                if frame.get("kind") != "msg":
                    continue  # control frames are not for the site
                message = decode_message(frame)
                if self._accepting:
                    assert self.site is not None
                    self.site.receive(message)
        except (ConnectionError, CodecError, asyncio.CancelledError):
            return
        finally:
            if peer_sid is not None and self._writers.get(peer_sid) is writer:
                del self._writers[peer_sid]
            writer.close()


async def serve_site(
    sid: int,
    host: str = "127.0.0.1",
    port: int = 0,
    service_time: float = 0.0,
    announce: bool = True,
) -> None:
    """Run one site process until cancelled (``repro serve``).

    Prints ``REPRO-SITE sid=<sid> port=<port>`` once the socket is bound
    so a parent orchestrator can scrape the ephemeral port.
    """
    server = SiteServer(sid, host=host, port=port, service_time=service_time)
    await server.start()
    if announce:
        print(f"REPRO-SITE sid={sid} port={server.port}", flush=True)
    try:
        await asyncio.Event().wait()  # serve until cancelled/killed
    finally:
        await server.stop()
