"""Unit tests for the executable appendix proofs."""

import pytest

from repro.core.builder import (
    from_spec,
    mostly_read,
    mostly_write,
    recommended_tree,
    unmodified_binary,
)
from repro.core.proofs import (
    prove_lower_bound_for_binary_tree,
    prove_read_load,
    prove_write_load,
    read_witness,
    write_witness,
)
from repro.quorums.load import optimal_load
from repro.core.protocol import ArbitraryProtocol

TREES = [
    from_spec("1-3-5"),
    from_spec("1-2-2-2"),
    from_spec("P1-2-4"),
    mostly_read(9),
    mostly_write(9),
    recommended_tree(30),
]


class TestWitnessConstruction:
    def test_read_witness_is_distribution(self):
        for tree in TREES:
            witness = read_witness(tree)
            assert sum(witness.values()) == pytest.approx(1.0)
            assert len(witness) == tree.d

    def test_write_witness_is_distribution(self):
        for tree in TREES:
            witness = write_witness(tree)
            assert sum(witness.values()) == pytest.approx(1.0)
            assert len(witness) == tree.num_physical_levels

    def test_write_witness_one_per_level(self):
        tree = from_spec("1-3-5")
        witness = write_witness(tree)
        for level in tree.physical_levels:
            members = set(tree.replica_ids_at(level))
            assert len(members & set(witness)) == 1


class TestProofs:
    @pytest.mark.parametrize("tree", TREES, ids=lambda t: t.spec())
    def test_read_proof_holds(self, tree):
        proof = prove_read_load(tree)
        assert proof.optimal
        assert proof.strategy_load == pytest.approx(proof.claimed_load)

    @pytest.mark.parametrize("tree", TREES, ids=lambda t: t.spec())
    def test_write_proof_holds(self, tree):
        proof = prove_write_load(tree)
        assert proof.optimal
        assert proof.strategy_load == pytest.approx(proof.claimed_load)

    def test_proof_agrees_with_lp(self):
        tree = from_spec("1-3-5")
        protocol = ArbitraryProtocol(tree)
        proof = prove_read_load(tree)
        lp = optimal_load(
            list(protocol.read_quorums()), universe=protocol.universe
        )
        assert proof.claimed_load == pytest.approx(lp.load, abs=1e-6)

    def test_materialisation_guard(self):
        with pytest.raises(ValueError, match="exceed"):
            prove_read_load(recommended_tree(100), max_quorums=10)

    def test_wrong_witness_fails_lower_bound(self):
        """Sanity: the verifier rejects a bogus certificate."""
        from repro.quorums.base import SetSystem
        from repro.quorums.load import verify_load_witness

        tree = from_spec("1-3-5")
        protocol = ArbitraryProtocol(tree)
        system = SetSystem(protocol.read_quorums(), universe=protocol.universe)
        bogus = {0: 1.0}  # all mass on one replica of the thin level
        # claims load 1/3 but the quorum {1, 3} carries zero witness mass
        assert not verify_load_witness(system, bogus, 1 / 3)


class TestLowerBound:
    @pytest.mark.parametrize("n", [3, 7, 15, 31, 63])
    def test_strictly_below_naor_wool(self, n):
        import math

        ours, naor_wool, strictly_lower = prove_lower_bound_for_binary_tree(n)
        assert strictly_lower
        assert ours == pytest.approx(1.0 / math.log2(n + 1))
        assert naor_wool == pytest.approx(2.0 / (math.log2(n + 1) + 1))

    def test_values_for_n_7(self):
        ours, naor_wool, _ = prove_lower_bound_for_binary_tree(7)
        assert ours == pytest.approx(1 / 3)
        assert naor_wool == pytest.approx(1 / 2)
