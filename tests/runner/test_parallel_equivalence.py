"""Parallel == serial, bit for bit, under a fixed master seed.

The runner's whole correctness claim: task layout, per-task seeds and the
merge fold never depend on ``--jobs``, so sharded runs reproduce the serial
(and the unsharded library) results exactly — including the merged obs
counters of traced runs.
"""

from collections import Counter

import pytest

from repro.analysis.sweeps import sweep_configurations
from repro.runner import (
    SimParams,
    merge_monitors,
    parallel_availability,
    parallel_simulations,
    parallel_sweep,
)

JOBS = [2, 4]

QUANTITIES = ("read_cost", "write_cost", "read_load")
SIZES = (7, 15, 31)


@pytest.mark.parametrize("jobs", JOBS)
def test_parallel_sweep_matches_serial_library_sweep(jobs):
    serial = sweep_configurations(QUANTITIES, sizes=SIZES, p=0.7)
    sharded = parallel_sweep(
        QUANTITIES, sizes=SIZES, p=0.7, jobs=jobs, size_chunk=1
    )
    assert sharded == serial


def test_parallel_sweep_is_chunking_invariant():
    runs = [
        parallel_sweep(QUANTITIES, sizes=SIZES, p=0.7, jobs=jobs, size_chunk=chunk)
        for jobs in (1, 2)
        for chunk in (1, 2, 4)
    ]
    assert all(run == runs[0] for run in runs)


@pytest.mark.parametrize("jobs", JOBS)
@pytest.mark.parametrize("op", ["read", "write"])
def test_parallel_availability_bit_identical(jobs, op):
    ref = ("tree", "1-3-5")
    serial = parallel_availability(
        ref, 0.85, op, samples=30_000, seed=13, jobs=1, chunk=4_000
    )
    sharded = parallel_availability(
        ref, 0.85, op, samples=30_000, seed=13, jobs=jobs, chunk=4_000
    )
    assert sharded == serial


def test_parallel_availability_protocol_ref_bit_identical():
    ref = ("protocol", "majority", 9)
    serial = parallel_availability(ref, 0.8, samples=12_000, seed=3, jobs=1, chunk=2_500)
    sharded = parallel_availability(ref, 0.8, samples=12_000, seed=3, jobs=2, chunk=2_500)
    assert sharded == serial


def _monitor_key(monitor):
    return (monitor.reads, monitor.writes, monitor.outcomes, monitor.summary())


@pytest.mark.parametrize("jobs", JOBS)
def test_parallel_simulations_bit_identical(jobs):
    params = SimParams(spec="1-3-5", operations=120, p=0.9, seed=21)
    serial = parallel_simulations(params, repeats=5, jobs=1)
    sharded = parallel_simulations(params, repeats=5, jobs=jobs)
    assert len(serial) == len(sharded) == 5
    for a, b in zip(serial, sharded):
        assert _monitor_key(a) == _monitor_key(b)
    # The merged monitors agree too (counters, latencies, loads).
    merged_serial = merge_monitors(serial)
    merged_sharded = merge_monitors(sharded)
    assert _monitor_key(merged_serial) == _monitor_key(merged_sharded)
    assert merged_serial.per_replica_read_load() == merged_sharded.per_replica_read_load()


@pytest.mark.parametrize("jobs", JOBS)
def test_parallel_traced_simulations_merge_identical_obs_counters(jobs):
    params = SimParams(spec="1-3", operations=60, p=0.85, seed=5, trace=True)
    serial = merge_monitors(parallel_simulations(params, repeats=3, jobs=1))
    sharded = merge_monitors(parallel_simulations(params, repeats=3, jobs=jobs))
    assert serial.recorder.enabled and sharded.recorder.enabled
    assert serial.recorder.counters.keys() == sharded.recorder.counters.keys()
    for group, counts in serial.recorder.counters.items():
        assert Counter(counts) == Counter(sharded.recorder.counters[group])
    assert serial.recorder.metrics == sharded.recorder.metrics
    assert len(serial.recorder.spans) == len(sharded.recorder.spans)


def test_master_seed_changes_every_repeat():
    params = SimParams(spec="1-3-5", operations=80, p=0.9, seed=21)
    base = parallel_simulations(params, repeats=3, jobs=1)
    other = parallel_simulations(params, repeats=3, master_seed=99, jobs=1)
    assert all(
        a.outcomes != b.outcomes for a, b in zip(base, other)
    )
