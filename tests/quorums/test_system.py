"""Unit tests for the unified QuorumSystem layer and its caching wrapper."""

import random
from collections.abc import Iterator

import pytest

from repro.quorums.system import CachedQuorumSystem, QuorumSystem


class ExplicitSystem(QuorumSystem):
    """A minimal concrete system: quorums given as explicit lists.

    Read quorums are the rows, write quorums the columns, of a 2x2 grid —
    a genuine bi-coterie with known LP loads (0.5 for either op).
    """

    name = "explicit-2x2"

    def __init__(self):
        self.read_enumerations = 0
        self.write_enumerations = 0

    @property
    def universe(self) -> frozenset[int]:
        return frozenset(range(4))

    def read_quorums(self) -> Iterator[frozenset[int]]:
        self.read_enumerations += 1
        yield frozenset({0, 1})
        yield frozenset({2, 3})

    def write_quorums(self) -> Iterator[frozenset[int]]:
        self.write_enumerations += 1
        yield frozenset({0, 2})
        yield frozenset({1, 3})


class TestGenericDefaults:
    def test_n_from_universe(self):
        assert ExplicitSystem().n == 4

    def test_quorums_by_op_name(self):
        system = ExplicitSystem()
        assert list(system.quorums("read")) == [frozenset({0, 1}), frozenset({2, 3})]
        assert list(system.quorums("write")) == [frozenset({0, 2}), frozenset({1, 3})]
        with pytest.raises(ValueError, match="op"):
            list(system.quorums("delete"))

    def test_materialise_guard(self):
        with pytest.raises(ValueError, match="more than 1"):
            ExplicitSystem().materialise("read", max_quorums=1)

    def test_select_scans_for_fully_live_quorum(self):
        system = ExplicitSystem()
        live = {2, 3}
        assert system.select_read_quorum(live) == frozenset({2, 3})
        assert system.select_write_quorum(live) is None
        assert system.select_read_quorum(set()) is None

    def test_select_with_rng_returns_only_live_members(self):
        system = ExplicitSystem()
        rng = random.Random(0)
        for _ in range(20):
            quorum = system.select_read_quorum({0, 1, 2, 3}, rng)
            assert quorum in (frozenset({0, 1}), frozenset({2, 3}))

    def test_select_rng_randomises_choice(self):
        system = ExplicitSystem()
        rng = random.Random(1)
        seen = {system.select_read_quorum({0, 1, 2, 3}, rng) for _ in range(40)}
        assert seen == {frozenset({0, 1}), frozenset({2, 3})}

    def test_sampling_never_returns_none(self):
        system = ExplicitSystem()
        rng = random.Random(2)
        assert system.sample_read_quorum(rng) is not None
        assert system.sample_write_quorum(rng) is not None

    def test_derived_load_matches_known_optimum(self):
        system = ExplicitSystem()
        assert system.load("read") == pytest.approx(0.5)
        assert system.load("write") == pytest.approx(0.5)

    def test_derived_strategy_and_load_vector(self):
        system = ExplicitSystem()
        vector = system.load_vector("read")
        assert set(vector) <= set(range(4))
        assert max(vector.values()) == pytest.approx(0.5)

    def test_derived_availability_endpoints(self):
        system = ExplicitSystem()
        assert system.availability(1.0, "read") == pytest.approx(1.0)
        assert system.availability(0.0, "write") == pytest.approx(0.0)

    def test_bicoterie_checks(self):
        system = ExplicitSystem()
        assert system.is_bicoterie()
        bicoterie = system.bicoterie()
        assert len(list(bicoterie.read_quorums)) == 2


class TestCachedQuorumSystem:
    def test_load_enumerates_once_per_op(self):
        inner = ExplicitSystem()
        cached = CachedQuorumSystem(inner)
        for _ in range(5):
            cached.load("read")
            cached.load("write")
            cached.strategy("read")
            cached.load_vector("write")
        assert inner.read_enumerations == 1
        assert inner.write_enumerations == 1
        assert cached.enumerations == 2

    def test_availability_reuses_the_enumeration(self):
        inner = ExplicitSystem()
        cached = CachedQuorumSystem(inner)
        for p in (0.5, 0.9, 0.5, 0.9):
            cached.availability(p, "read")
            cached.availability(p, "write")
        assert inner.read_enumerations == 1
        assert inner.write_enumerations == 1

    def test_cached_values_match_uncached(self):
        inner = ExplicitSystem()
        cached = CachedQuorumSystem(ExplicitSystem())
        assert cached.load("read") == pytest.approx(inner.load("read"))
        assert cached.availability(0.8, "write") == pytest.approx(
            inner.availability(0.8, "write")
        )

    def test_iteration_hits_the_cache(self):
        inner = ExplicitSystem()
        cached = CachedQuorumSystem(inner)
        assert list(cached.read_quorums()) == list(cached.read_quorums())
        assert inner.read_enumerations == 1

    def test_selection_is_delegated_live(self):
        cached = CachedQuorumSystem(ExplicitSystem())
        assert cached.select_read_quorum({2, 3}) == frozenset({2, 3})
        assert cached.select_write_quorum({2, 3}) is None

    def test_name_universe_and_extras_forwarded(self):
        inner = ExplicitSystem()
        cached = CachedQuorumSystem(inner)
        assert cached.name == "explicit-2x2"
        assert cached.universe == inner.universe
        assert cached.system is inner
        # an attribute only the wrapped class defines
        assert cached.read_enumerations == inner.read_enumerations

    def test_wraps_real_protocols(self):
        from repro.protocols.tree_quorum import TreeQuorumProtocol

        cached = CachedQuorumSystem(TreeQuorumProtocol(7))
        first = cached.materialise("read")
        again = cached.materialise("read")
        assert first is again
        assert cached.enumerations == 1
        # closed-form extras pass through __getattr__
        assert cached.average_cost() == TreeQuorumProtocol(7).average_cost()
