"""Unit tests for the simulated network."""

import random

import pytest

from repro.sim.events import Scheduler
from repro.sim.messages import ReadRequest
from repro.sim.network import (
    Network,
    PartitionSpec,
    exponential_latency,
    fixed_latency,
    uniform_latency,
)


class Sink:
    """Minimal endpoint for tests."""

    def __init__(self, up: bool = True):
        self.up = up
        self.received = []

    @property
    def is_up(self) -> bool:
        return self.up

    def receive(self, message) -> None:
        self.received.append(message)


@pytest.fixture
def net():
    scheduler = Scheduler()
    network = Network(scheduler, random.Random(0), latency=2.0)
    return scheduler, network


class TestDelivery:
    def test_message_arrives_after_latency(self, net):
        scheduler, network = net
        sink = Sink()
        network.register(1, sink)
        network.register(0, Sink())
        network.send(ReadRequest(src=0, dst=1, key="k"))
        assert sink.received == []
        scheduler.run()
        assert len(sink.received) == 1
        assert scheduler.now == 2.0

    def test_unregistered_destination_raises(self, net):
        _scheduler, network = net
        network.register(0, Sink())
        with pytest.raises(KeyError, match="no endpoint"):
            network.send(ReadRequest(src=0, dst=9, key="k"))

    def test_duplicate_registration_rejected(self, net):
        _scheduler, network = net
        network.register(1, Sink())
        with pytest.raises(ValueError, match="already registered"):
            network.register(1, Sink())

    def test_dead_destination_drops_at_delivery(self, net):
        scheduler, network = net
        sink = Sink()
        network.register(0, Sink())
        network.register(1, sink)
        network.send(ReadRequest(src=0, dst=1, key="k"))
        sink.up = False  # crash while in flight
        scheduler.run()
        assert sink.received == []
        assert network.stats.dropped_dead == 1

    def test_broadcast(self, net):
        scheduler, network = net
        sinks = [Sink() for _ in range(3)]
        for sid, sink in enumerate(sinks):
            network.register(sid, sink)
        network.broadcast(
            ReadRequest(src=0, dst=sid, key="k") for sid in range(3)
        )
        scheduler.run()
        assert all(len(sink.received) == 1 for sink in sinks)

    def test_stats_counters(self, net):
        scheduler, network = net
        network.register(0, Sink())
        network.register(1, Sink())
        network.send(ReadRequest(src=0, dst=1, key="k"))
        scheduler.run()
        assert network.stats.sent == 1
        assert network.stats.delivered == 1
        assert network.stats.dropped == 0


class TestLoss:
    def test_lossy_network_drops_some(self):
        scheduler = Scheduler()
        network = Network(
            scheduler, random.Random(1), latency=1.0, drop_probability=0.5
        )
        sink = Sink()
        network.register(0, Sink())
        network.register(1, sink)
        for _ in range(200):
            network.send(ReadRequest(src=0, dst=1, key="k"))
        scheduler.run()
        assert network.stats.dropped_loss > 50
        assert len(sink.received) == 200 - network.stats.dropped_loss

    @pytest.mark.parametrize("probability", [-0.01, 1.01])
    def test_out_of_range_drop_probability_rejected(self, probability):
        with pytest.raises(ValueError, match="drop probability"):
            Network(Scheduler(), random.Random(0), drop_probability=probability)

    @pytest.mark.parametrize("probability", [-0.01, 1.01])
    def test_out_of_range_duplicate_probability_rejected(self, probability):
        with pytest.raises(ValueError, match="duplicate probability"):
            Network(
                Scheduler(), random.Random(0),
                duplicate_probability=probability,
            )

    @pytest.mark.parametrize("probability", [0.0, 1.0])
    def test_boundary_probabilities_accepted(self, probability):
        # Regression: probabilities are a closed interval; 1.0 used to be
        # rejected even though the docstring presented these as
        # probabilities.
        Network(
            Scheduler(), random.Random(0),
            drop_probability=probability,
            duplicate_probability=probability,
        )

    def test_drop_probability_one_drops_everything(self):
        scheduler = Scheduler()
        network = Network(
            scheduler, random.Random(3), latency=1.0, drop_probability=1.0
        )
        sink = Sink()
        network.register(0, Sink())
        network.register(1, sink)
        for _ in range(50):
            network.send(ReadRequest(src=0, dst=1, key="k"))
        scheduler.run()
        assert sink.received == []
        assert network.stats.dropped_loss == 50

    def test_duplicate_probability_one_duplicates_everything(self):
        scheduler = Scheduler()
        network = Network(
            scheduler, random.Random(3), latency=1.0,
            duplicate_probability=1.0,
        )
        sink = Sink()
        network.register(0, Sink())
        network.register(1, sink)
        for _ in range(50):
            network.send(ReadRequest(src=0, dst=1, key="k"))
        scheduler.run()
        assert network.stats.duplicated == 50
        assert len(sink.received) == 100


class TestPartitions:
    def test_split_construction(self):
        spec = PartitionSpec.split({0, 1}, {2, 3})
        assert spec.connected(0, 1)
        assert not spec.connected(1, 2)

    def test_duplicate_sid_rejected(self):
        with pytest.raises(ValueError, match="two components"):
            PartitionSpec.split({0, 1}, {1, 2})

    def test_unmapped_sids_share_default_group(self):
        spec = PartitionSpec.split({0, 1})
        assert spec.connected(5, 6)
        assert not spec.connected(0, 5)

    def test_partition_blocks_cross_traffic(self, net):
        scheduler, network = net
        a, b = Sink(), Sink()
        network.register(0, a)
        network.register(1, b)
        network.set_partition(PartitionSpec.split({0}, {1}))
        network.send(ReadRequest(src=0, dst=1, key="k"))
        scheduler.run()
        assert b.received == []
        assert network.stats.dropped_partition == 1
        assert network.partitioned
        assert not network.reachable(0, 1)

    def test_heal_restores_traffic(self, net):
        scheduler, network = net
        b = Sink()
        network.register(0, Sink())
        network.register(1, b)
        network.set_partition(PartitionSpec.split({0}, {1}))
        network.heal_partition()
        network.send(ReadRequest(src=0, dst=1, key="k"))
        scheduler.run()
        assert len(b.received) == 1
        assert network.reachable(0, 1)


class TestLatencyModels:
    def test_fixed(self):
        assert fixed_latency(3.0)(random.Random(0)) == 3.0
        with pytest.raises(ValueError):
            fixed_latency(-1.0)

    def test_uniform(self):
        rng = random.Random(0)
        model = uniform_latency(1.0, 2.0)
        for _ in range(50):
            assert 1.0 <= model(rng) <= 2.0
        with pytest.raises(ValueError):
            uniform_latency(3.0, 2.0)

    def test_exponential(self):
        rng = random.Random(0)
        model = exponential_latency(2.0)
        samples = [model(rng) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.1)
        with pytest.raises(ValueError):
            exponential_latency(0.0)
