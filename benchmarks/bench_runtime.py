"""Real-execution runtime: wall-clock ops/sec over localhost TCP.

Every other bench in this directory measures the *simulator* (virtual
time) or a pure kernel.  This one measures the real execution backend
(DESIGN.md §2.16): a :class:`~repro.runtime.cluster.LocalCluster` spawns
one ``repro serve`` child process per replica site, dials each over
localhost TCP, and drives the same :class:`QuorumCoordinator` the
simulator uses — so the numbers below are wall-clock protocol cost
(framing, sockets, asyncio scheduling, 2PC round trips), not model
predictions.

Cases, all on the paper's canonical **1-3-5** tree (8 replica sites):

* ``read_heavy`` — 90% reads: the protocol's intended regime (single
  read site on the happy path vs a multi-site 2PC write quorum);
* ``mixed`` — 50/50 get/put;
* ``write_heavy`` — 10% reads: every op pays close to full 2PC cost;
* ``chaos_read`` — read-only traffic with a mid-run SIGKILL of the
  deepest leaf; recorded to show read availability (and its latency
  cost) through a real crash, and gated on zero read failures.

Each case reports wall-clock ops/sec and per-op p50/p99 latency
(milliseconds, nearest-rank percentiles).  Numbers are machine- and
load-dependent; the JSON stamps the host fingerprint, and the only
asserted gates are correctness-shaped (no failed operations outside the
chaos case, no failed reads inside it).

Two tiers:

* ``--smoke`` (and the pytest test, used by the CI runtime job): fewer
  operations per case, finishes in well under a minute;
* the default full run records the trajectory cited in EXPERIMENTS.md.

Run directly::

    PYTHONPATH=src python benchmarks/bench_runtime.py [--smoke] [--out P]
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

try:
    from benchmarks.perf_harness import write_bench_json
except ImportError:  # direct `python benchmarks/bench_runtime.py`
    sys.path.insert(0, str(Path(__file__).parent))
    from perf_harness import write_bench_json

from repro.runtime.cluster import LocalCluster, run_traffic

SPEC = "1-3-5"

#: (case name, read fraction, kill mid-run?) — ops count is tier-scaled.
CASES = [
    ("read_heavy", 0.9, False),
    ("mixed", 0.5, False),
    ("write_heavy", 0.1, False),
    ("chaos_read", 1.0, True),
]


async def _run_case(
    name: str,
    read_fraction: float,
    chaos: bool,
    operations: int,
    keys: int,
    seed: int,
) -> dict:
    """One traffic case on a freshly spawned cluster (clean site state)."""
    cluster = LocalCluster(spec=SPEC, timeout=1.0, max_attempts=4, seed=seed)
    await cluster.start()
    try:
        report = await run_traffic(
            cluster,
            operations=operations,
            read_fraction=read_fraction,
            keys=keys,
            seed=seed,
            kill_after_ops=operations // 3 if chaos else None,
        )
    finally:
        await cluster.stop()
    orphans = cluster.orphans()
    assert orphans == [], f"{name}: orphaned site processes {orphans}"
    point = {"case": f"runtime/{SPEC}/{name}", **report.summary()}
    print(
        f"  {name:<12} {report.operations:>5} ops  "
        f"{report.ops_per_sec:>8.1f} ops/sec  "
        f"read p50/p99 {point['read_p50_ms']:.2f}/"
        f"{point['read_p99_ms']:.2f} ms  "
        f"write p50/p99 {point['write_p50_ms']:.2f}/"
        f"{point['write_p99_ms']:.2f} ms"
    )
    return point


async def _run_all(operations: int, keys: int, seed: int) -> list[dict]:
    results = []
    for name, read_fraction, chaos in CASES:
        results.append(
            await _run_case(name, read_fraction, chaos, operations, keys, seed)
        )
    return results


def run(smoke: bool, out: str | None = None) -> dict:
    operations = 60 if smoke else 400
    keys = 4 if smoke else 8

    print(f"runtime backend: {SPEC} tree, real TCP site processes")
    results = asyncio.run(_run_all(operations, keys, seed=0))

    by_case = {point["case"]: point for point in results}
    read_heavy = by_case[f"runtime/{SPEC}/read_heavy"]
    chaos = by_case[f"runtime/{SPEC}/chaos_read"]
    summary = {
        "spec": SPEC,
        "operations_per_case": operations,
        "read_heavy_ops_per_sec": read_heavy["ops_per_sec"],
        "read_heavy_read_p50_ms": read_heavy["read_p50_ms"],
        "read_heavy_read_p99_ms": read_heavy["read_p99_ms"],
        "mixed_ops_per_sec": by_case[f"runtime/{SPEC}/mixed"]["ops_per_sec"],
        "write_heavy_ops_per_sec":
            by_case[f"runtime/{SPEC}/write_heavy"]["ops_per_sec"],
        "chaos_killed_site": chaos["killed_site"],
        "chaos_post_kill_reads": chaos["post_kill_reads"],
        "chaos_post_kill_read_failures": chaos["post_kill_read_failures"],
    }
    bench = "runtime_smoke" if smoke and out else "runtime"
    path = write_bench_json(bench, results, summary, out=out)
    print(f"\nwrote {path}")
    print(f"summary: {summary}")
    # Correctness-shaped gates only (wall-clock magnitudes are host-bound).
    for point in results:
        chaos_case = point["case"].endswith("chaos_read")
        if not chaos_case:
            assert point["read_failures"] == 0, f"{point['case']}: failed reads"
            assert point["write_failures"] == 0, (
                f"{point['case']}: failed writes on a healthy cluster"
            )
        assert point["ops_per_sec"] > 0, f"{point['case']}: no throughput"
    # The tentpole's availability claim: SIGKILL a deepest-level leaf and
    # every post-kill read still succeeds.
    assert chaos["killed_site"] is not None
    assert chaos["post_kill_reads"] > 0
    assert chaos["post_kill_read_failures"] == 0, (
        "reads failed after the leaf SIGKILL"
    )
    return summary


def test_runtime_perf_smoke(emit):
    """CI smoke: all four cases at the small tier, real site processes.

    Writes to a ``_smoke`` JSON so a local pytest run never clobbers the
    recorded full-run trajectory.
    """
    from benchmarks.perf_harness import RESULTS_DIR

    summary = run(
        smoke=True, out=str(RESULTS_DIR / "BENCH_runtime_smoke.json")
    )
    emit(
        "runtime_smoke",
        f"runtime smoke ({SPEC} over real TCP): read-heavy "
        f"{summary['read_heavy_ops_per_sec']:,} ops/wall-sec, read p50 "
        f"{summary['read_heavy_read_p50_ms']} ms, p99 "
        f"{summary['read_heavy_read_p99_ms']} ms; "
        f"{summary['chaos_post_kill_reads']} post-SIGKILL reads, "
        f"{summary['chaos_post_kill_read_failures']} failures",
    )
    assert summary["chaos_post_kill_read_failures"] == 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer operations per case (CI runtime-job tier)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default benchmarks/results/BENCH_runtime.json)",
    )
    args = parser.parse_args()
    run(smoke=args.smoke, out=args.out)
