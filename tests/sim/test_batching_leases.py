"""Unit and end-to-end tests for coordinator batching and read leases.

Covers the lease cache in isolation, the coordinator's leased-read short
circuit (grant off read quorums and committed writes, invalidation at
exclusive-lock grant and on liveness-epoch movement), window batching
(same-key reads coalesce onto one quorum read, successor writes skip the
version round), and the acceptance requirement that the invariant checker
stays green with both features on under mass-crash and flapping chaos.
"""

import random

import pytest

from repro.core.builder import from_spec
from repro.core.protocol import ArbitraryProtocol
from repro.fault.scenarios import chaos_injector
from repro.sim.coordinator import QuorumCoordinator
from repro.sim.engine import SimulationConfig, simulate
from repro.sim.events import Scheduler
from repro.sim.leases import LeaseCache
from repro.sim.locks import LockManager
from repro.sim.network import Network
from repro.sim.site import Site
from repro.sim.workload import WorkloadSpec


class Rig:
    """Coordinator + sites assembly with optional batching and leases."""

    def __init__(
        self,
        spec="1-3-5",
        max_attempts=3,
        timeout=8.0,
        seed=0,
        batch_window=0.0,
        leases=False,
    ):
        self.tree = from_spec(spec)
        self.scheduler = Scheduler()
        self.network = Network(self.scheduler, random.Random(seed), latency=1.0)
        self.sites = [Site(sid, self.network) for sid in range(self.tree.n)]
        self.locks = LockManager(self.scheduler)
        self.leases = (
            LeaseCache(epoch=lambda: self.network.liveness_epoch)
            if leases
            else None
        )
        self.coordinator = QuorumCoordinator(
            sid=-1,
            network=self.network,
            system=ArbitraryProtocol(self.tree),
            locks=self.locks,
            detector=lambda sid: self.sites[sid].is_up,
            rng=random.Random(seed + 1),
            timeout=timeout,
            max_attempts=max_attempts,
            writer_id=self.tree.n,
            liveness_epoch=lambda: self.network.liveness_epoch,
            batch_window=batch_window,
            leases=self.leases,
        )
        self.outcomes = []

    def read(self, key):
        self.coordinator.read(key, self.outcomes.append)
        self.scheduler.run()
        return self.outcomes[-1]

    def write(self, key, value):
        self.coordinator.write(key, value, self.outcomes.append)
        self.scheduler.run()
        return self.outcomes[-1]


class TestLeaseCache:
    def _cache(self, epoch=0):
        state = {"epoch": epoch}
        cache = LeaseCache(epoch=lambda: state["epoch"])
        return cache, state

    def test_lookup_miss_then_grant_then_hit(self):
        cache, _ = self._cache()
        assert cache.lookup("k") is None
        assert cache.misses == 1 and cache.hits == 0
        cache.grant("k", "v", timestamp=None, quorum=frozenset({1, 2}))
        entry = cache.lookup("k")
        assert entry is not None and entry.value == "v"
        assert cache.hits == 1 and cache.grants == 1
        assert len(cache) == 1

    def test_invalidate_revokes_and_counts(self):
        cache, _ = self._cache()
        cache.grant("k", "v", timestamp=None, quorum=frozenset())
        cache.invalidate("k")
        assert cache.lookup("k") is None
        assert cache.invalidations == 1
        # Invalidating an absent key is a no-op, not a double count.
        cache.invalidate("k")
        assert cache.invalidations == 1

    def test_epoch_movement_drops_entries(self):
        cache, state = self._cache()
        cache.grant("k", "v", timestamp=None, quorum=frozenset())
        state["epoch"] += 1
        assert cache.lookup("k") is None
        assert cache.epoch_invalidations == 1
        assert len(cache) == 0
        # A re-grant under the new epoch is served again.
        cache.grant("k", "v2", timestamp=None, quorum=frozenset())
        assert cache.lookup("k").value == "v2"

    def test_hit_rate_and_summary(self):
        cache, _ = self._cache()
        assert cache.hit_rate == 0.0
        cache.grant("k", "v", timestamp=None, quorum=frozenset())
        cache.lookup("k")
        cache.lookup("other")
        assert cache.hit_rate == 0.5
        summary = cache.summary()
        assert summary == {
            "entries": 1.0,
            "hits": 1.0,
            "misses": 1.0,
            "grants": 1.0,
            "invalidations": 0.0,
            "epoch_invalidations": 0.0,
            "flushes": 0.0,
            "hit_rate": 0.5,
        }


class TestLeasedReads:
    def test_second_read_is_served_from_the_lease(self):
        rig = Rig(leases=True)
        first = rig.read("k")
        assert first.success and not first.leased
        sent_before = rig.network.stats.sent
        second = rig.read("k")
        assert second.leased and second.success
        assert second.value == first.value
        assert second.timestamp == first.timestamp
        assert second.quorum == frozenset() and second.attempts == 0
        # Nobody was contacted: the leased serve is message-free.
        assert rig.network.stats.sent == sent_before

    def test_committed_write_grants_a_write_through_lease(self):
        rig = Rig(leases=True)
        rig.write("k", "v1")
        outcome = rig.read("k")
        assert outcome.leased and outcome.value == "v1"

    def test_write_invalidates_the_lease(self):
        rig = Rig(leases=True)
        rig.read("k")
        assert rig.leases.grants >= 1
        rig.write("k", "fresh")
        assert rig.leases.invalidations >= 1
        outcome = rig.read("k")
        # The commit re-granted (write-through), and the served value is
        # the freshly committed one — never the pre-write lease.
        assert outcome.value == "fresh"

    def test_liveness_epoch_bump_revokes_leases(self):
        rig = Rig(leases=True)
        rig.read("k")
        rig.network.bump_liveness_epoch()
        outcome = rig.read("k")
        assert not outcome.leased
        assert len(outcome.quorum) > 0
        assert rig.leases.epoch_invalidations == 1

    def test_site_crash_revokes_leases(self):
        rig = Rig(leases=True)
        rig.read("k")
        rig.sites[0].crash()
        outcome = rig.read("k")
        assert not outcome.leased
        assert rig.leases.epoch_invalidations == 1


class TestBatching:
    def test_same_key_reads_coalesce_to_one_quorum_read(self):
        baseline = Rig()
        baseline.read("k")
        single_read_cost = baseline.network.stats.sent

        rig = Rig(batch_window=2.0)
        for _ in range(3):
            rig.coordinator.read("k", rig.outcomes.append)
        rig.scheduler.run()
        assert len(rig.outcomes) == 3
        assert all(o.success for o in rig.outcomes)
        # One quorum round served all three waiters.
        assert rig.network.stats.sent == single_read_cost
        # Every waiter sees the same quorum result.
        assert len({o.timestamp for o in rig.outcomes}) == 1

    def test_fanned_out_outcomes_keep_their_own_submission_times(self):
        rig = Rig(batch_window=2.0)
        rig.coordinator.read("k", rig.outcomes.append)
        rig.scheduler.schedule(
            1.0, lambda: rig.coordinator.read("k", rig.outcomes.append)
        )
        rig.scheduler.run()
        starts = sorted(o.started_at for o in rig.outcomes)
        assert starts == [0.0, 1.0]
        assert len({o.finished_at for o in rig.outcomes}) == 1

    def test_batched_writes_skip_redundant_version_rounds(self):
        # The 1-1-1 tree forces every quorum size (one read quorum, all
        # write quorums single-replica), so message counts are exact
        # regardless of which quorum the RNG picks.
        baseline = Rig(spec="1-1-1")
        baseline.write("k", "a")
        baseline.write("k", "b")
        serial_cost = baseline.network.stats.sent

        rig = Rig(spec="1-1-1", batch_window=2.0)
        rig.coordinator.write("k", "a", rig.outcomes.append)
        rig.coordinator.write("k", "b", rig.outcomes.append)
        rig.scheduler.run()
        assert all(o.success for o in rig.outcomes)
        versions = [o.timestamp.version for o in rig.outcomes]
        assert versions == [1, 2]
        # The second write derived its version from the floor instead of
        # running its own version round, so the batch is strictly cheaper.
        assert rig.network.stats.sent < serial_cost
        assert rig.read("k").value == "b"

    def test_distinct_keys_issue_independently(self):
        rig = Rig(batch_window=2.0)
        rig.coordinator.write("a", 1, rig.outcomes.append)
        rig.coordinator.write("b", 2, rig.outcomes.append)
        rig.coordinator.read("a", rig.outcomes.append)
        rig.scheduler.run()
        assert len(rig.outcomes) == 3
        assert all(o.success for o in rig.outcomes)
        assert rig.read("a").value == 1
        assert rig.read("b").value == 2

    def test_zero_window_issues_immediately(self):
        rig = Rig(batch_window=0.0)
        assert rig.coordinator.batch_window == 0.0
        outcome = rig.read("k")
        assert outcome.success and outcome.started_at == 0.0

    def test_negative_window_rejected(self):
        rig = Rig()
        with pytest.raises(ValueError, match="window"):
            QuorumCoordinator(
                sid=-2,
                network=rig.network,
                system=ArbitraryProtocol(rig.tree),
                locks=rig.locks,
                detector=lambda sid: True,
                rng=random.Random(0),
                batch_window=-1.0,
            )

    def test_batched_reads_can_be_served_leased(self):
        rig = Rig(batch_window=2.0, leases=True)
        rig.read("k")  # grants the lease
        sent_before = rig.network.stats.sent
        for _ in range(3):
            rig.coordinator.read("k", rig.outcomes.append)
        rig.scheduler.run()
        group = rig.outcomes[-3:]
        assert all(o.leased for o in group)
        assert rig.network.stats.sent == sent_before


def _chaos_config(scenario: str, seed: int) -> SimulationConfig:
    return SimulationConfig(
        tree=from_spec("1-3-5"),
        workload=WorkloadSpec(
            operations=150,
            read_fraction=0.9,
            keys=16,
            arrival="poisson",
            rate=0.3,
            zipf_s=1.1,
        ),
        failures=chaos_injector(scenario, 8, seed=seed, horizon=500.0),
        timeout=8.0,
        max_attempts=3,
        check_invariants=True,
        batch_window=2.0,
        leases=True,
        seed=seed,
    )


@pytest.mark.parametrize(
    "scenario,seed", [("mass-crash", 21), ("flapping", 9)]
)
def test_invariants_hold_batched_and_leased_under_chaos(scenario, seed):
    """Acceptance: no invariant violations with both features on."""
    result = simulate(_chaos_config(scenario, seed))
    assert result.invariants is not None
    assert result.invariants.ok, result.invariants.violations
    # The lease cache actually participated (hits) and was revoked by the
    # chaos scenario's liveness churn (epoch invalidations).
    assert result.leases is not None
    assert result.leases.hits > 0
    assert result.leases.epoch_invalidations > 0
