"""Integration: heterogeneous per-replica availability, formulas vs simulator."""

import pytest

from repro.core import metrics
from repro.core.builder import from_spec
from repro.sim import BernoulliFailures, SimulationConfig, WorkloadSpec, simulate


class TestHeterogeneousFleet:
    def test_measured_availability_matches_generalised_formulas(self):
        tree = from_spec("1-3-5")
        # a flaky level-1 replica and one rock-solid replica per level
        p_map = {0: 0.55, 1: 0.95, 2: 0.75, 3: 0.95, 4: 0.6, 5: 0.7, 6: 0.8, 7: 0.9}
        result = simulate(
            SimulationConfig(
                tree=tree,
                workload=WorkloadSpec(
                    operations=8000, read_fraction=0.5, keys=64,
                    arrival="poisson", rate=0.25,
                ),
                failures=BernoulliFailures(p=p_map, seed=17, resample_every=40.0),
                max_attempts=1,
                timeout=8.0,
                seed=17,
            )
        )
        summary = result.summary()
        assert summary["read_availability"] == pytest.approx(
            metrics.read_availability(tree, p_map), abs=0.035
        )
        assert summary["write_availability"] == pytest.approx(
            metrics.write_availability(tree, p_map), abs=0.05
        )

    def test_perfect_level_guarantees_writes(self):
        tree = from_spec("1-3-5")
        p_map = {sid: 1.0 for sid in range(3)}        # level 1 perfect
        p_map.update({sid: 0.5 for sid in range(3, 8)})  # level 2 flaky
        result = simulate(
            SimulationConfig(
                tree=tree,
                workload=WorkloadSpec(
                    operations=2000, read_fraction=0.0, keys=16,
                    arrival="poisson", rate=0.2,
                ),
                failures=BernoulliFailures(p=p_map, seed=3, resample_every=50.0),
                max_attempts=1,
                timeout=8.0,
                seed=3,
            )
        )
        # level 1 is always a complete write quorum
        assert result.monitor.writes.availability > 0.97

    def test_consistency_holds_with_heterogeneous_failures(self):
        from tests.integration.test_consistency import audit_one_copy_equivalence

        tree = from_spec("1-3-5")
        p_map = {sid: 0.6 + 0.05 * sid for sid in range(8)}
        result = simulate(
            SimulationConfig(
                tree=tree,
                workload=WorkloadSpec(operations=1500, read_fraction=0.5, keys=6),
                failures=BernoulliFailures(p=p_map, seed=5, resample_every=45.0),
                max_attempts=3,
                timeout=8.0,
                seed=5,
            )
        )
        assert audit_one_copy_equivalence(result) == 0
