"""Render trace streams as human-readable reports.

Three views over a :class:`~repro.obs.recorder.TraceRecorder`:

* :func:`phase_breakdown` / :func:`render_phase_breakdown` — per-phase
  latency statistics (count, mean, p50, p95, total) grouped by operation
  type and phase name, the measured counterpart of "where does an
  operation's time go";
* :func:`flame_summary` — an aggregated text flame graph: spans merged by
  their name path from the root, with call counts and total simulated
  time, so retries, deferrals and slow phases stand out at a glance;
* :func:`render_trace` — the full span tree of a single trace.

All views run equally on a live recorder or one re-loaded from a JSON
Lines export (:mod:`repro.obs.export`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.recorder import TraceRecorder
from repro.obs.spans import Span, SpanKind
from repro.obs.stats import Histogram, linear_percentile

#: Span kinds that represent time an operation actually spent somewhere.
_TIMED_KINDS = (SpanKind.LOCK_WAIT, SpanKind.PHASE, SpanKind.DEFER)


@dataclass
class PhaseStat:
    """Latency statistics of one (operation type, phase) pair."""

    op: str
    phase: str
    count: int
    mean: float
    p50: float
    p95: float
    total: float


def phase_breakdown(spans: list[Span]) -> list[PhaseStat]:
    """Aggregate lock-wait/phase/defer spans into per-phase statistics."""
    durations: dict[tuple[str, str], list[float]] = {}
    for span in spans:
        if span.kind not in _TIMED_KINDS or not span.finished:
            continue
        key = (str(span.attributes.get("op", "?")), span.name)
        durations.setdefault(key, []).append(span.duration)
    stats = []
    for (op, phase), values in sorted(durations.items()):
        values.sort()
        stats.append(
            PhaseStat(
                op=op,
                phase=phase,
                count=len(values),
                mean=sum(values) / len(values),
                p50=linear_percentile(values, 0.5),
                p95=linear_percentile(values, 0.95),
                total=sum(values),
            )
        )
    return stats


def phase_histograms(
    spans: list[Span], start: float = 1.0, factor: float = 2.0, buckets: int = 12
) -> dict[tuple[str, str], Histogram]:
    """Duration histograms keyed by (operation type, phase name)."""
    histograms: dict[tuple[str, str], Histogram] = {}
    for span in spans:
        if span.kind not in _TIMED_KINDS or not span.finished:
            continue
        key = (str(span.attributes.get("op", "?")), span.name)
        histogram = histograms.get(key)
        if histogram is None:
            histogram = histograms[key] = Histogram.exponential(
                start, factor, buckets
            )
        histogram.add(span.duration)
    return histograms


def render_phase_breakdown(stats: list[PhaseStat]) -> str:
    """Text table of :func:`phase_breakdown` output."""
    header = (
        f"{'op':<7} {'phase':<20} {'count':>7} {'mean':>9} "
        f"{'p50':>9} {'p95':>9} {'total':>11}"
    )
    lines = [header, "-" * len(header)]
    for stat in stats:
        lines.append(
            f"{stat.op:<7} {stat.phase:<20} {stat.count:>7} "
            f"{stat.mean:>9.3f} {stat.p50:>9.3f} {stat.p95:>9.3f} "
            f"{stat.total:>11.2f}"
        )
    if len(lines) == 2:
        lines.append("(no timed spans recorded)")
    return "\n".join(lines)


def flame_summary(recorder: TraceRecorder, indent: str = "  ") -> str:
    """Aggregated text flame graph over every trace in the recorder.

    Spans are merged by their name path from the root; each line shows the
    merged count, total simulated time and mean.  Event spans (timeouts,
    retries) appear with their counts and zero duration.
    """
    children: dict[int, list[Span]] = {}
    roots: list[Span] = []
    for span in recorder.spans.values():
        if span.parent_id is None:
            roots.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)

    aggregate: dict[tuple[str, ...], list[float]] = {}

    def walk(span: Span, path: tuple[str, ...]) -> None:
        path = path + (span.name,)
        cell = aggregate.setdefault(path, [0, 0.0])
        cell[0] += 1
        cell[1] += span.duration
        for child in children.get(span.span_id, ()):
            walk(child, path)

    for root in roots:
        walk(root, ())

    total_spans = len(recorder.spans)
    lines = [f"flame summary ({len(roots)} traces, {total_spans} spans)"]
    for path in sorted(aggregate):
        count, total = aggregate[path]
        mean = total / count if count else 0.0
        lines.append(
            f"{indent * (len(path) - 1)}{path[-1]:<{30 - len(indent) * (len(path) - 1)}}"
            f" {int(count):>7}x  total {total:>11.2f}  mean {mean:>8.3f}"
        )
    return "\n".join(lines)


def render_trace(spans: list[Span], indent: str = "  ") -> str:
    """The span tree of one trace, annotated with times and statuses."""
    children: dict[int | None, list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    by_id = {span.span_id: span for span in spans}
    roots = [s for s in spans if s.parent_id is None or s.parent_id not in by_id]

    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        end = f"{span.end:.2f}" if span.end is not None else "open"
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
        lines.append(
            f"{indent * depth}{span.name} [{span.start:.2f} -> {end}] "
            f"{span.status}" + (f" ({attrs})" if attrs else "")
        )
        for child in sorted(
            children.get(span.span_id, ()), key=lambda s: (s.start, s.span_id)
        ):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda s: (s.start, s.span_id)):
        walk(root, 0)
    return "\n".join(lines)


def render_counters(recorder: TraceRecorder) -> str:
    """Counter groups (message send/deliver/drop tallies) as text."""
    lines = []
    for group in sorted(recorder.counters):
        lines.append(f"{group}:")
        for name, value in sorted(recorder.counters[group].items()):
            lines.append(f"  {name:<20} {value:>9}")
    if not lines:
        lines.append("(no counters recorded)")
    return "\n".join(lines)
