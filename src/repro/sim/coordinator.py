"""Quorum operation coordinator: executes reads and writes over the network.

The coordinator turns the abstract quorum rules into the message-level
protocol of Section 2.2:

* **read(key)** — take a shared lock at the centralised lock manager,
  assemble a read quorum from live replicas, fetch every member's
  value+timestamp, and return the value whose timestamp has the highest
  version number and lowest SID;
* **write(key, value)** — take an exclusive lock, obtain the highest
  version number from a read quorum and increment it (Section 3.2.2),
  assemble a write quorum, and run two-phase commit (prepare/vote then
  commit/abort) across its members.

Failures are transient and *detectable* (Section 2.2), so quorum selection
consults a liveness oracle; replicas that crash between selection and
delivery simply never answer, the attempt times out, and the coordinator
retries with a fresh quorum up to ``max_attempts`` times.  Every completed
operation is reported as an :class:`OperationOutcome`.

The coordinator is protocol-agnostic: it drives any
:class:`~repro.quorums.system.QuorumSystem` through the unified
``select_read_quorum(live, rng)`` / ``select_write_quorum(live, rng)``
interface — the paper's arbitrary protocol and all six comparison protocols
alike, with no per-protocol adaptation.
"""

from __future__ import annotations

import enum
import random
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # annotation-only: repro.fault type-hints this module back
    from repro.fault.detector import SuspectList
    from repro.fault.retry import RetryPolicy

from repro.obs.recorder import NULL_RECORDER, NullRecorder
from repro.obs.spans import STATUS_OK, SpanKind
from repro.quorums.liveness import LivenessOracle
from repro.quorums.selection import SelectionIndex
from repro.quorums.system import QuorumSystem
from repro.sim.events import EventHandle, Scheduler
from repro.sim.locks import LockManager, LockMode
from repro.sim.messages import (
    AbortMessage,
    AckMessage,
    CommitMessage,
    DecisionRequest,
    Message,
    PrepareMessage,
    ReadReply,
    ReadRequest,
    VersionReply,
    VersionRequest,
    VoteMessage,
)
from repro.sim.network import Network
from repro.sim.replica import ZERO_TIMESTAMP, Timestamp, dominant
from repro.sim.transactions import TransactionIdSource


class FailureReason(enum.Enum):
    """Why an operation did not succeed."""

    NONE = "none"
    UNAVAILABLE = "no-quorum-available"
    TIMEOUT = "quorum-timeout"
    LOCK_TIMEOUT = "lock-timeout"
    VOTE_REFUSED = "participant-refused"


@dataclass
class OperationOutcome:
    """The result of one read or write operation."""

    op_type: str
    key: Any
    success: bool
    value: Any = None
    timestamp: Timestamp | None = None
    quorum: frozenset[int] = frozenset()
    version_quorum: frozenset[int] = frozenset()
    attempts: int = 1
    started_at: float = 0.0
    finished_at: float = 0.0
    reason: FailureReason = FailureReason.NONE

    @property
    def latency(self) -> float:
        """Wall-clock (simulated) duration of the operation."""
        return self.finished_at - self.started_at


DoneCallback = Callable[[OperationOutcome], None]


class _Stage(enum.Enum):
    READ = "read"
    VERSION = "version"
    PREPARE = "prepare"
    COMMIT = "commit"


@dataclass(slots=True)
class _OpContext:
    op_type: str
    key: Any
    on_done: DoneCallback
    lock_token: int
    started_at: float
    value: Any = None
    stage: _Stage = _Stage.READ
    attempts: int = 0
    request_id: int = 0
    txid: int = 0
    quorum: frozenset[int] = frozenset()
    version_quorum: frozenset[int] = frozenset()
    replies: dict[int, ReadReply] = field(default_factory=dict)
    versions: dict[int, Timestamp] = field(default_factory=dict)
    votes: dict[int, bool] = field(default_factory=dict)
    acks: set[int] = field(default_factory=set)
    write_timestamp: Timestamp | None = None
    timeout_handle: EventHandle | None = None
    finished: bool = False
    write_system: QuorumSystem | None = None
    lock_granted: bool = False
    # Trace span ids (0 = no span; only set when a recorder is enabled).
    trace_id: int = 0
    op_span: int = 0
    lock_span: int = 0
    attempt_span: int = 0
    phase_span: int = 0


class QuorumCoordinator:
    """Client-side executor of quorum reads and 2PC writes.

    Parameters
    ----------
    sid:
        Network address of this coordinator; must be negative so it never
        collides with replica SIDs.
    network:
        The shared message fabric.
    system:
        The quorum system whose selection rules the coordinator follows
        (any :class:`~repro.quorums.system.QuorumSystem`).
    locks:
        The centralised lock manager.
    detector:
        Perfect failure detector: ``detector(sid)`` is the replica's
        liveness (Section 2.2 makes failures detectable).
    rng:
        Randomness for quorum selection (spreads load like the paper's
        uniform strategies).
    timeout:
        How long to wait for a quorum's replies before retrying.
    max_attempts:
        Total quorum attempts per operation (1 = measure pure availability).
    writer_id:
        The SID recorded inside write timestamps.
    recorder:
        Trace recorder receiving one span tree per operation (lock wait,
        quorum selection, protocol phases, timeouts, retries, deferrals).
        The default :data:`~repro.obs.recorder.NULL_RECORDER` makes every
        hook a guarded no-op.
    retry_policy:
        Optional :class:`~repro.fault.retry.RetryPolicy` governing the
        delay before each retry and before unavailability re-probes.
        ``None`` keeps the legacy shape: immediate retry after a timeout
        or refused vote, ``unavailable_delay`` after finding no quorum.
    suspects:
        Optional :class:`~repro.fault.detector.SuspectList`.  When
        present, every quorum member that stays silent past a timeout is
        charged suspicion evidence, replies exonerate their sender, and
        quorum selection prefers quorums avoiding the currently
        suspected sites before falling back to blind selection.
    """

    def __init__(
        self,
        sid: int,
        network: Network,
        system: QuorumSystem,
        locks: LockManager,
        detector: LivenessOracle,
        rng: random.Random,
        timeout: float = 10.0,
        max_attempts: int = 3,
        writer_id: int = 0,
        tx_ids: TransactionIdSource | None = None,
        unavailable_delay: float | None = None,
        version_floor: dict | None = None,
        recorder: NullRecorder = NULL_RECORDER,
        liveness_epoch: Callable[[], int] | None = None,
        retry_policy: "RetryPolicy | None" = None,
        suspects: "SuspectList | None" = None,
        selector: SelectionIndex | None = None,
    ) -> None:
        if sid >= 0:
            raise ValueError("coordinator SIDs must be negative")
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        self.sid = sid
        self._network = network
        self._system = system
        self._locks = locks
        self._detector = detector
        self._rng = rng
        self._timeout = timeout
        self._unavailable_delay = (
            timeout if unavailable_delay is None else unavailable_delay
        )
        self._max_attempts = max_attempts
        self._writer_id = writer_id
        self._recorder = recorder
        self._tx_ids = tx_ids or TransactionIdSource()
        self._by_request: dict[int, _OpContext] = {}
        self._by_txid: dict[int, _OpContext] = {}
        self._in_flight = 0
        self._decisions: dict[int, bool] = {}
        # The per-key version floor embodies the paper's centralised
        # concurrency-control point; multiple coordinators in one system
        # must SHARE it (pass the same dict) so versions stay monotone even
        # when a write quorum cannot see the previous write's level.
        self._version_floor: dict[Any, Timestamp] = (
            version_floor if version_floor is not None else {}
        )
        self._liveness_epoch = liveness_epoch
        self._retry_policy = retry_policy
        self._suspects = suspects
        # A shared SelectionIndex (one per replica group/shard) lets every
        # coordinator of the group reuse the same packed quorum tables and
        # per-(op, live-mask) viable-row cache instead of building private
        # copies; selection results are identical either way (the cache
        # only memoises, the caller's RNG still drives the pick).
        self._shared_selector = selector
        self._selector: SelectionIndex | None = None
        self._universe: tuple[int, ...] = ()
        self._live_cache: tuple[int, ...] | None = None
        self._live_cache_epoch: int | None = None
        self._rebuild_selector()
        network.register(sid, self)

    @property
    def is_up(self) -> bool:
        """Coordinators do not fail in this model."""
        return True

    @property
    def system(self) -> QuorumSystem:
        """The active quorum system."""
        return self._system

    def set_system(self, system: QuorumSystem) -> None:
        """Swap the quorum system (used by tree reconfiguration)."""
        self._system = system
        self._rebuild_selector()

    @property
    def selector(self) -> SelectionIndex | None:
        """The bitset selection index, if the active system qualifies."""
        return self._selector

    @property
    def suspects(self) -> "SuspectList | None":
        """The attached failure detector (``None`` = blind selection)."""
        return self._suspects

    @property
    def retry_policy(self) -> "RetryPolicy | None":
        """The attached retry policy (``None`` = legacy immediate retry)."""
        return self._retry_policy

    # ------------------------------------------------------------------
    # quorum selection fast path
    # ------------------------------------------------------------------

    def _rebuild_selector(self) -> None:
        """(Re)attach a :class:`SelectionIndex` to the active system.

        Only systems that declare ``uniform_selection`` may be dispatched
        onto the packed kernel: the index picks uniformly among viable
        quorums, so substituting it for a structural selector that prefers
        primary quorums (tree-quorum paths, HQC's recursion, ...) would
        change the measured distribution, not just its speed.
        """
        self._selector = None
        self._live_cache = None
        self._live_cache_epoch = None
        if not getattr(self._system, "uniform_selection", False):
            return
        universe = getattr(self._system, "universe", None)
        if universe is None:
            return
        try:
            self._universe = tuple(sorted(universe))
        except TypeError:
            return
        shared = self._shared_selector
        if shared is not None and shared.system is self._system:
            self._selector = shared
            return
        self._selector = SelectionIndex(self._system)

    def _live_replicas(self) -> tuple[int, ...]:
        """The detector's live view of the universe, cached per epoch.

        The network's liveness epoch advances on every crash, recovery,
        partition install and heal, so between bumps the probe loop can be
        skipped entirely — the dominant saving for large ``n``.
        """
        epoch_fn = self._liveness_epoch
        epoch = epoch_fn() if epoch_fn is not None else None
        if (
            self._live_cache is None
            or epoch is None
            or epoch != self._live_cache_epoch
        ):
            detector = self._detector
            self._live_cache = tuple(
                sid for sid in self._universe if detector(sid)
            )
            self._live_cache_epoch = epoch
        return self._live_cache

    def _select_quorum(
        self, op: str, system: QuorumSystem | None = None
    ) -> frozenset[int] | None:
        """Select a live ``op`` quorum, via the packed index when possible.

        ``system`` overrides the coordinator's own system (reconfiguration
        state transfer); overrides always use their own structural selector
        since they are rare and short-lived.
        """
        if system is not None and system is not self._system:
            if op == "read":
                return system.select_read_quorum(self._detector, self._rng)
            return system.select_write_quorum(self._detector, self._rng)
        suspects = self._suspects
        avoid: frozenset[int] = (
            suspects.suspected(self.scheduler.now)
            if suspects is not None
            else frozenset()
        )
        selector = self._selector
        if selector is not None:
            if avoid:
                quorum, avoided = selector.select_avoiding(
                    op, self._live_replicas(), avoid, self._rng
                )
                if avoided:
                    suspects.note_avoided()
                return quorum
            return selector.select(op, self._live_replicas(), self._rng)
        if avoid and any(self._detector(sid) for sid in avoid):
            # Structural selector: run it once over an oracle that also
            # rules out suspected sites; fall back to the plain liveness
            # oracle when no suspect-free quorum stands.
            detector = self._detector

            def preferred(sid: int) -> bool:
                return sid not in avoid and detector(sid)

            if op == "read":
                quorum = self._system.select_read_quorum(preferred, self._rng)
            else:
                quorum = self._system.select_write_quorum(preferred, self._rng)
            if quorum is not None:
                suspects.note_avoided()
                return quorum
        if op == "read":
            return self._system.select_read_quorum(self._detector, self._rng)
        return self._system.select_write_quorum(self._detector, self._rng)

    def system_universe(self) -> frozenset[int]:
        """The replica SIDs the active system spans (if it reports them)."""
        universe = getattr(self._system, "universe", None)
        if universe is None:
            raise TypeError(
                f"{type(self._system).__name__} does not expose a universe"
            )
        return frozenset(universe)

    def is_quiescent(self) -> bool:
        """True iff no operation is in flight on this coordinator.

        Counts operations from submission (including lock waits) to their
        ``on_done`` callback.
        """
        return self._in_flight == 0

    @property
    def scheduler(self) -> Scheduler:
        """The simulation scheduler (via the network)."""
        return self._network.scheduler

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------

    def read(self, key: Any, on_done: DoneCallback) -> None:
        """Issue a quorum read of ``key``; ``on_done`` fires exactly once."""
        self._in_flight += 1
        ctx = _OpContext(
            op_type="read",
            key=key,
            on_done=on_done,
            lock_token=self._tx_ids.next_id(),
            started_at=self.scheduler.now,
            stage=_Stage.READ,
        )
        self._trace_operation_start(ctx, LockMode.SHARED)
        self._locks.acquire(
            ctx.lock_token,
            key,
            LockMode.SHARED,
            lambda granted: self._lock_decided(ctx, granted),
        )

    def write(self, key: Any, value: Any, on_done: DoneCallback) -> None:
        """Issue a quorum write; ``on_done`` fires exactly once."""
        self._write(key, value, on_done, write_system=None)

    def write_with_system(
        self,
        key: Any,
        value: Any,
        system: QuorumSystem,
        on_done: DoneCallback,
    ) -> None:
        """A write whose *write quorum* comes from a different quorum system.

        Versions are still obtained through the current system's read
        quorums (which intersect every past write), while the data lands on
        the override system's write quorum — the primitive tree
        reconfiguration needs for state transfer.
        """
        self._write(key, value, on_done, write_system=system)

    def _write(
        self,
        key: Any,
        value: Any,
        on_done: DoneCallback,
        write_system: QuorumSystem | None,
    ) -> None:
        self._in_flight += 1
        ctx = _OpContext(
            op_type="write",
            key=key,
            value=value,
            on_done=on_done,
            lock_token=self._tx_ids.next_id(),
            started_at=self.scheduler.now,
            stage=_Stage.VERSION,
            write_system=write_system,
        )
        self._trace_operation_start(ctx, LockMode.EXCLUSIVE)
        self._locks.acquire(
            ctx.lock_token,
            key,
            LockMode.EXCLUSIVE,
            lambda granted: self._lock_decided(ctx, granted),
        )

    # ------------------------------------------------------------------
    # trace span helpers
    # ------------------------------------------------------------------

    def _trace_operation_start(self, ctx: _OpContext, mode: LockMode) -> None:
        recorder = self._recorder
        if not recorder.enabled:
            return
        now = self.scheduler.now
        ctx.trace_id = ctx.op_span = recorder.start_trace(
            ctx.op_type, now, key=str(ctx.key), coordinator=self.sid
        )
        ctx.lock_span = recorder.start_span(
            ctx.trace_id, ctx.op_span, "lock_wait", SpanKind.LOCK_WAIT, now,
            op=ctx.op_type, mode=mode.value,
        )

    def _begin_phase(self, ctx: _OpContext, name: str, quorum_size: int) -> None:
        recorder = self._recorder
        if not recorder.enabled:
            return
        now = self.scheduler.now
        if ctx.phase_span:
            recorder.end_span(ctx.phase_span, now)
            ctx.phase_span = 0
        recorder.event(
            ctx.trace_id, ctx.attempt_span, "quorum_select", now,
            op=ctx.op_type, stage=name, size=quorum_size,
        )
        ctx.phase_span = recorder.start_span(
            ctx.trace_id, ctx.attempt_span, f"phase/{name}", SpanKind.PHASE,
            now, op=ctx.op_type, quorum=quorum_size,
        )

    def _end_phase(self, ctx: _OpContext, status: str = STATUS_OK) -> None:
        if ctx.phase_span:
            self._recorder.end_span(
                ctx.phase_span, self.scheduler.now, status=status
            )
            ctx.phase_span = 0

    def _close_attempt(self, ctx: _OpContext, status: str = STATUS_OK) -> None:
        recorder = self._recorder
        if not recorder.enabled:
            return
        self._end_phase(ctx, status=status)
        if ctx.attempt_span:
            recorder.end_span(ctx.attempt_span, self.scheduler.now, status=status)
            ctx.attempt_span = 0

    # ------------------------------------------------------------------
    # lock handling
    # ------------------------------------------------------------------

    def _lock_decided(self, ctx: _OpContext, granted: bool) -> None:
        ctx.lock_granted = granted
        if ctx.lock_span:
            self._recorder.end_span(
                ctx.lock_span, self.scheduler.now,
                status=STATUS_OK if granted else FailureReason.LOCK_TIMEOUT.value,
            )
            ctx.lock_span = 0
        if not granted:
            self._finish(ctx, success=False, reason=FailureReason.LOCK_TIMEOUT)
            return
        self._start_attempt(ctx)

    # ------------------------------------------------------------------
    # attempt lifecycle
    # ------------------------------------------------------------------

    def _start_attempt(self, ctx: _OpContext) -> None:
        if ctx.finished:
            return
        ctx.attempts += 1
        ctx.replies.clear()
        ctx.versions.clear()
        ctx.votes.clear()
        # Stale commit acknowledgements must not leak into the next
        # attempt: a fresh attempt selects a fresh quorum, and acks from an
        # earlier one would let ``_on_ack`` complete the commit early.
        ctx.acks.clear()
        recorder = self._recorder
        if recorder.enabled:
            self._close_attempt(ctx)
            ctx.attempt_span = recorder.start_span(
                ctx.trace_id, ctx.op_span, "attempt", SpanKind.ATTEMPT,
                self.scheduler.now, op=ctx.op_type, number=ctx.attempts,
            )
        if ctx.op_type == "read":
            self._start_read_phase(ctx)
        else:
            ctx.stage = _Stage.VERSION
            self._start_version_phase(ctx)

    def _defer_unavailable(self, ctx: _OpContext) -> None:
        """No quorum is currently live: report/retry after a detection delay.

        Discovering unavailability costs real time (a probe round); charging
        it here keeps the simulated clock moving, so periodic failure
        injectors and the workload stay correctly interleaved.

        The ``ctx.finished`` guard matters: a racing timeout path can
        finish the operation before a pending phase start lands here, and
        scheduling the retry callback (or recording the defer span) for a
        finished context would leak a stray event past the operation's
        closed root span.
        """
        if ctx.finished:
            return
        self._cancel_timeout(ctx)
        delay = self._unavailable_delay
        if self._retry_policy is not None:
            policy_delay = self._retry_policy.unavailable_delay(ctx.attempts)
            if policy_delay is not None:
                delay = policy_delay
        recorder = self._recorder
        if recorder.enabled:
            now = self.scheduler.now
            span = recorder.start_span(
                ctx.trace_id, ctx.attempt_span or ctx.op_span,
                "unavailable_defer", SpanKind.DEFER, now, op=ctx.op_type,
            )
            recorder.end_span(
                span, now + delay,
                status=FailureReason.UNAVAILABLE.value,
            )
        self.scheduler.schedule(
            delay,
            lambda: self._retry_or_fail(ctx, FailureReason.UNAVAILABLE),
        )

    def _retry_or_fail(self, ctx: _OpContext, reason: FailureReason) -> None:
        if ctx.finished:
            return
        self._close_attempt(ctx, status=reason.value)
        if ctx.attempts >= self._max_attempts:
            self._finish(ctx, success=False, reason=reason)
            return
        if self._recorder.enabled:
            self._recorder.event(
                ctx.trace_id, ctx.op_span, "retry", self.scheduler.now,
                op=ctx.op_type, reason=reason.value, attempt=ctx.attempts,
            )
        # The unavailability path already charged its delay in
        # _defer_unavailable; every other failure consults the retry
        # policy for a backoff before the next attempt.
        delay = 0.0
        if (
            self._retry_policy is not None
            and reason is not FailureReason.UNAVAILABLE
        ):
            delay = self._retry_policy.retry_delay(ctx.attempts)
        if delay <= 0.0:
            self._start_attempt(ctx)
            return
        if self._recorder.enabled:
            now = self.scheduler.now
            span = self._recorder.start_span(
                ctx.trace_id, ctx.op_span, "backoff", SpanKind.DEFER, now,
                op=ctx.op_type, attempt=ctx.attempts,
            )
            self._recorder.end_span(span, now + delay)
        self.scheduler.schedule(delay, lambda: self._start_attempt(ctx))

    def _arm_timeout(self, ctx: _OpContext) -> None:
        self._cancel_timeout(ctx)
        attempt = ctx.attempts
        stage = ctx.stage
        ctx.timeout_handle = self.scheduler.schedule(
            self._timeout, lambda: self._on_timeout(ctx, attempt, stage)
        )

    def _cancel_timeout(self, ctx: _OpContext) -> None:
        if ctx.timeout_handle is not None:
            ctx.timeout_handle.cancel()
            ctx.timeout_handle = None

    @staticmethod
    def _pending_members(ctx: _OpContext, stage: _Stage) -> set[int]:
        """Quorum members that have stayed silent in ``stage`` so far."""
        if stage is _Stage.READ:
            return set(ctx.quorum) - ctx.replies.keys()
        if stage is _Stage.VERSION:
            return set(ctx.version_quorum) - ctx.versions.keys()
        if stage is _Stage.PREPARE:
            return set(ctx.quorum) - ctx.votes.keys()
        return set(ctx.quorum) - ctx.acks

    def _on_timeout(self, ctx: _OpContext, attempt: int, stage: _Stage) -> None:
        if ctx.finished or ctx.attempts != attempt or ctx.stage is not stage:
            return
        if self._recorder.enabled:
            self._recorder.event(
                ctx.trace_id, ctx.attempt_span or ctx.op_span, "timeout",
                self.scheduler.now, op=ctx.op_type, stage=stage.value,
                attempt=attempt,
            )
        if self._suspects is not None and stage is not _Stage.COMMIT:
            # Members that never answered within the timeout window are the
            # detector's evidence source: crashed sites are already excluded
            # from future selections by the liveness oracle, but stragglers
            # and flaky links look exactly like this.
            self._suspects.record_timeout(
                sorted(self._pending_members(ctx, stage)), self.scheduler.now
            )
        if stage is _Stage.COMMIT:
            self._continue_commit(ctx)
            return
        self._unregister(ctx)
        if stage is _Stage.PREPARE:
            self._broadcast_decision(ctx, commit=False)
        self._retry_or_fail(ctx, FailureReason.TIMEOUT)

    def _unregister(self, ctx: _OpContext) -> None:
        self._by_request.pop(ctx.request_id, None)
        self._by_txid.pop(ctx.txid, None)

    def _finish(
        self,
        ctx: _OpContext,
        success: bool,
        reason: FailureReason = FailureReason.NONE,
        value: Any = None,
        timestamp: Timestamp | None = None,
    ) -> None:
        if ctx.finished:
            return
        ctx.finished = True
        self._in_flight -= 1
        self._cancel_timeout(ctx)
        self._unregister(ctx)
        # Only release a lock that was actually granted: on the
        # LOCK_TIMEOUT path the request was denied while still queued, so
        # there is nothing to release.
        if ctx.lock_granted:
            self._locks.release(ctx.lock_token, ctx.key)
        recorder = self._recorder
        if recorder.enabled:
            status = STATUS_OK if success else reason.value
            self._close_attempt(ctx, status=status)
            recorder.end_span(
                ctx.op_span, self.scheduler.now, status=status,
                attempts=ctx.attempts, quorum=len(ctx.quorum),
                version_quorum=len(ctx.version_quorum),
            )
        outcome = OperationOutcome(
            op_type=ctx.op_type,
            key=ctx.key,
            success=success,
            value=value,
            timestamp=timestamp,
            quorum=ctx.quorum,
            version_quorum=ctx.version_quorum,
            attempts=ctx.attempts,
            started_at=ctx.started_at,
            finished_at=self.scheduler.now,
            reason=reason if not success else FailureReason.NONE,
        )
        ctx.on_done(outcome)

    # ------------------------------------------------------------------
    # read phase
    # ------------------------------------------------------------------

    def _start_read_phase(self, ctx: _OpContext) -> None:
        quorum = self._select_quorum("read")
        if quorum is None:
            self._defer_unavailable(ctx)
            return
        ctx.stage = _Stage.READ
        ctx.quorum = quorum
        self._begin_phase(ctx, "read", len(quorum))
        ctx.request_id = self._tx_ids.next_id()
        self._by_request[ctx.request_id] = ctx
        self._arm_timeout(ctx)
        for member in sorted(quorum):
            self._network.send(
                ReadRequest(
                    src=self.sid, dst=member,
                    key=ctx.key, request_id=ctx.request_id,
                )
            )

    def _on_read_reply(self, ctx: _OpContext, message: ReadReply) -> None:
        ctx.replies[message.src] = message
        if set(ctx.replies) < ctx.quorum:
            return
        best = max(
            ctx.replies.values(), key=lambda reply: reply.timestamp.sort_key()
        )
        self._finish(
            ctx, success=True, value=best.value, timestamp=best.timestamp
        )

    # ------------------------------------------------------------------
    # write: version phase
    # ------------------------------------------------------------------

    def _start_version_phase(self, ctx: _OpContext) -> None:
        quorum = self._select_quorum("read")
        if quorum is None:
            # The paper's write availability depends only on the write
            # quorum (Section 3.2.2): obtain the version numbers from the
            # write quorum itself when no read quorum is assemblable.  The
            # coordinator's per-key version floor (it is the centralised
            # concurrency-control point of Section 2.2, so every write's
            # version passes through it) keeps versions monotone even when
            # the fallback quorum missed the latest committed write.
            quorum = self._select_quorum("write")
        if quorum is None:
            self._defer_unavailable(ctx)
            return
        ctx.stage = _Stage.VERSION
        ctx.version_quorum = quorum
        self._begin_phase(ctx, "version", len(quorum))
        ctx.request_id = self._tx_ids.next_id()
        self._by_request[ctx.request_id] = ctx
        self._arm_timeout(ctx)
        for member in sorted(quorum):
            self._network.send(
                VersionRequest(
                    src=self.sid, dst=member,
                    key=ctx.key, request_id=ctx.request_id,
                )
            )

    def _on_version_reply(self, ctx: _OpContext, message: VersionReply) -> None:
        ctx.versions[message.src] = message.timestamp
        if set(ctx.versions) < ctx.version_quorum:
            return
        self._cancel_timeout(ctx)
        self._end_phase(ctx)
        observed = dominant(list(ctx.versions.values()))
        floor = self._version_floor.get(ctx.key, ZERO_TIMESTAMP)
        current = observed if observed.version >= floor.version else floor
        ctx.write_timestamp = current.next_version(self._writer_id)
        self._by_request.pop(ctx.request_id, None)
        self._start_prepare_phase(ctx)

    # ------------------------------------------------------------------
    # write: 2PC
    # ------------------------------------------------------------------

    def _start_prepare_phase(self, ctx: _OpContext) -> None:
        quorum = self._select_quorum("write", ctx.write_system)
        if quorum is None:
            self._defer_unavailable(ctx)
            return
        assert ctx.write_timestamp is not None
        ctx.stage = _Stage.PREPARE
        ctx.quorum = quorum
        self._begin_phase(ctx, "prepare", len(quorum))
        ctx.txid = self._tx_ids.next_id()
        self._by_txid[ctx.txid] = ctx
        self._arm_timeout(ctx)
        for member in sorted(quorum):
            self._network.send(
                PrepareMessage(
                    src=self.sid, dst=member,
                    txid=ctx.txid, key=ctx.key,
                    value=ctx.value, timestamp=ctx.write_timestamp,
                )
            )

    def _on_vote(self, ctx: _OpContext, message: VoteMessage) -> None:
        ctx.votes[message.src] = message.vote_commit
        if not message.vote_commit:
            self._cancel_timeout(ctx)
            self._unregister(ctx)
            self._broadcast_decision(ctx, commit=False)
            self._retry_or_fail(ctx, FailureReason.VOTE_REFUSED)
            return
        if set(ctx.votes) < ctx.quorum:
            return
        # Decision reached: the write is now durable (commit logged), but the
        # exclusive lock is held until every live quorum member has applied
        # it, so no later read can observe a pre-commit value.
        self._broadcast_decision(ctx, commit=True)
        assert ctx.write_timestamp is not None
        self._version_floor[ctx.key] = ctx.write_timestamp
        ctx.stage = _Stage.COMMIT
        self._begin_phase(ctx, "commit", len(ctx.quorum))
        self._arm_timeout(ctx)

    def _on_ack(self, ctx: _OpContext, message: AckMessage) -> None:
        if not message.committed:
            return  # stale abort-acks from earlier attempts
        ctx.acks.add(message.src)
        if ctx.acks >= ctx.quorum:
            self._complete_commit(ctx)

    def _continue_commit(self, ctx: _OpContext) -> None:
        """Commit-phase timeout: retransmit to laggards, skip the dead.

        A quorum member that crashed after voting yes will apply the write
        through the recovery termination protocol (and refuses reads of the
        key while in doubt), so the coordinator only waits for members the
        failure detector still reports live.
        """
        pending = [
            member for member in ctx.quorum - ctx.acks
            if self._detector(member)
        ]
        if not pending:
            self._complete_commit(ctx)
            return
        if self._suspects is not None:
            # Live-but-silent quorum members holding up the commit phase
            # are straggler evidence too.
            self._suspects.record_timeout(sorted(pending), self.scheduler.now)
        if self._recorder.enabled:
            self._recorder.event(
                ctx.trace_id, ctx.attempt_span or ctx.op_span,
                "commit_retransmit", self.scheduler.now, op=ctx.op_type,
                pending=len(pending),
            )
        for member in sorted(pending):
            self._network.send(
                CommitMessage(src=self.sid, dst=member, txid=ctx.txid)
            )
        self._arm_timeout(ctx)

    def _complete_commit(self, ctx: _OpContext) -> None:
        self._cancel_timeout(ctx)
        self._unregister(ctx)
        self._finish(
            ctx, success=True, value=ctx.value, timestamp=ctx.write_timestamp
        )

    def _broadcast_decision(self, ctx: _OpContext, commit: bool) -> None:
        self._decisions[ctx.txid] = commit
        for member in sorted(ctx.quorum):
            if commit:
                self._network.send(
                    CommitMessage(src=self.sid, dst=member, txid=ctx.txid)
                )
            else:
                self._network.send(
                    AbortMessage(src=self.sid, dst=member, txid=ctx.txid)
                )

    def _on_decision_request(self, message: DecisionRequest) -> None:
        """2PC termination: answer a recovered participant's in-doubt query.

        Unknown transactions are answered with abort (presumed abort): if no
        commit decision was logged, the transaction cannot have committed
        anywhere.
        """
        committed = self._decisions.get(message.txid, False)
        if committed:
            self._network.send(
                CommitMessage(src=self.sid, dst=message.src, txid=message.txid)
            )
        else:
            self._network.send(
                AbortMessage(src=self.sid, dst=message.src, txid=message.txid)
            )

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def receive(self, message: Message) -> None:
        """Route replies to their pending operation (stale ones are ignored).

        Only a *timely* reply — one that still finds its pending operation
        in the matching stage — exonerates the sender.  A straggler's
        answer that limps in after the attempt already timed out proves
        nothing about its current usefulness, and counting it as proof of
        life would flap the failure detector between suspicion and trust
        on every straggler round-trip.
        """
        ctx: _OpContext | None = None
        dispatch = None
        if isinstance(message, ReadReply):
            ctx = self._by_request.get(message.request_id)
            if ctx is not None and ctx.stage is _Stage.READ:
                dispatch = self._on_read_reply
        elif isinstance(message, VersionReply):
            ctx = self._by_request.get(message.request_id)
            if ctx is not None and ctx.stage is _Stage.VERSION:
                dispatch = self._on_version_reply
        elif isinstance(message, VoteMessage):
            ctx = self._by_txid.get(message.txid)
            if ctx is not None and ctx.stage is _Stage.PREPARE:
                dispatch = self._on_vote
        elif isinstance(message, DecisionRequest):
            # A replica asking for a past decision is running recovery:
            # it is certainly alive right now.
            if self._suspects is not None and message.src >= 0:
                self._suspects.exonerate(message.src, self.scheduler.now)
            self._on_decision_request(message)
            return
        elif isinstance(message, AckMessage):
            ctx = self._by_txid.get(message.txid)
            if ctx is not None and ctx.stage is _Stage.COMMIT:
                dispatch = self._on_ack
        else:
            raise TypeError(
                f"coordinator cannot handle {type(message).__name__}"
            )
        if dispatch is None:
            return
        if self._suspects is not None and message.src >= 0:
            self._suspects.exonerate(message.src, self.scheduler.now)
        dispatch(ctx, message)
