"""Availability of quorum systems under independent fail-stop replicas.

The paper assumes every replica is up independently with the same probability
``p = 1 - q`` (Section 2.2), and an operation is *available* when at least one
of its quorums consists entirely of live replicas.  This module provides:

* :func:`exact_availability` — exact probability, computed either by
  enumerating live-set configurations (2^n, good for small universes) or by
  inclusion-exclusion over the quorum list (2^m, good for few quorums);
* :func:`estimate_availability_monte_carlo` — a vectorised numpy estimator
  for systems too large for exact computation;
* :func:`system_availability` — a dispatcher choosing a method automatically.

Integer universes (the only kind this library produces) run on the packed
bitmask kernel of :mod:`repro.quorums.bitset`: live sets become integer
masks, quorum-containment becomes vectorised AND/compare passes, and the
Monte-Carlo estimator tests whole sample batches against packed quorum
words.  The pure-Python frozenset paths are kept as the generic-element
fallback and as the bit-exact reference the kernel is tested against
(``tests/quorums/test_kernel_agreement.py``); both sides reduce with
``math.fsum`` and multiply probabilities in ascending element order, so
kernel and reference agree to the last bit.  Every entry point also accepts
a pre-built :class:`~repro.quorums.bitset.PackedQuorums` (what
``CachedQuorumSystem`` caches) to skip re-packing.

The closed-form per-level products used by the paper for the arbitrary
protocol (Sections 3.2.1-3.2.2) live in :mod:`repro.core.metrics`; the tests
cross-check them against the exact computations here.
"""

from __future__ import annotations

import math
from collections.abc import Collection, Hashable, Iterable, Mapping
from itertools import combinations
from typing import TypeVar

import numpy as np

from repro.quorums.bitset import (
    PackedQuorums,
    availability_by_inclusion_exclusion,
    availability_by_universe_enumeration,
    estimate_availability_monte_carlo_packed,
    try_pack,
)

Element = TypeVar("Element", bound=Hashable)

_EXACT_UNIVERSE_LIMIT = 22
_EXACT_QUORUM_LIMIT = 20

#: How often (in quorums) the reference Monte-Carlo loop re-checks whether
#: every sample is already covered.  Checking after *every* quorum — the
#: pre-kernel behaviour — cost O(m · samples) in pure scan overhead.
_EARLY_EXIT_STRIDE = 32


def _normalise_probabilities(
    universe: Collection[Element],
    p: float | Mapping[Element, float],
) -> dict[Element, float]:
    """Expand a scalar or per-element mapping into per-element probabilities."""
    if isinstance(p, Mapping):
        probabilities = {element: float(p[element]) for element in universe}
    else:
        probabilities = {element: float(p) for element in universe}
    for element, value in probabilities.items():
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"availability of {element!r} is {value}, not in [0,1]")
    return probabilities


def _coerce(
    quorums: Iterable[Collection[Element]] | PackedQuorums,
    universe: Collection[Element] | None,
) -> tuple[tuple[frozenset[Element], ...], Collection[Element], PackedQuorums | None]:
    """Normalise quorum input into (frozensets, universe, packed-or-None)."""
    if isinstance(quorums, PackedQuorums):
        return quorums.to_frozensets(), quorums.elements, quorums
    frozen = tuple(frozenset(q) for q in quorums)
    if universe is None:
        universe = frozenset().union(*frozen) if frozen else frozenset()
    return frozen, universe, None


def _availability_by_universe_enumeration(
    quorums: tuple[frozenset[Element], ...],
    probabilities: dict[Element, float],
) -> float:
    """Sum P(live-set) over all live-sets containing at least one quorum.

    Pure-Python reference for the kernel's vectorised enumeration; both
    multiply per-element probabilities in ascending element order and reduce
    with ``fsum``, so their results are bit-identical.
    """
    elements = sorted(probabilities)
    n = len(elements)
    index = {element: i for i, element in enumerate(elements)}
    quorum_masks = [
        sum(1 << index[element] for element in quorum) for quorum in quorums
    ]
    totals: list[float] = []
    for live in range(1 << n):
        if not any(live & mask == mask for mask in quorum_masks):
            continue
        probability = 1.0
        for i, element in enumerate(elements):
            p_i = probabilities[element]
            probability *= p_i if live & (1 << i) else 1.0 - p_i
        totals.append(probability)
    return math.fsum(totals)


def _availability_by_inclusion_exclusion(
    quorums: tuple[frozenset[Element], ...],
    probabilities: dict[Element, float],
) -> float:
    """P(union of 'quorum fully live' events) via inclusion-exclusion.

    Pure-Python reference for the kernel's vectorised subset sweep; union
    probabilities multiply in ascending element order and terms reduce with
    ``fsum``, matching the kernel bit for bit.
    """
    terms: list[float] = []
    m = len(quorums)
    for size in range(1, m + 1):
        sign = 1.0 if size % 2 == 1 else -1.0
        for subset in combinations(quorums, size):
            union: frozenset[Element] = frozenset().union(*subset)
            probability = 1.0
            for element in sorted(union):
                probability *= probabilities[element]
            terms.append(sign * probability)
    return math.fsum(terms)


def exact_availability(
    quorums: Iterable[Collection[Element]] | PackedQuorums,
    p: float | Mapping[Element, float],
    universe: Collection[Element] | None = None,
) -> float:
    """Exact probability that at least one quorum is fully live.

    Chooses universe enumeration (``2^n``) or inclusion-exclusion (``2^m``)
    depending on which is cheaper; raises :class:`ValueError` when both the
    universe and the quorum list are too large — use the Monte-Carlo
    estimator or a protocol-specific closed form instead.  Integer universes
    run on the bitset kernel; pass a pre-built
    :class:`~repro.quorums.bitset.PackedQuorums` to skip re-packing.
    """
    frozen, universe, packed = _coerce(quorums, universe)
    probabilities = _normalise_probabilities(universe, p)
    if not frozen:
        return 0.0
    if packed is None:
        packed = try_pack(frozen, universe)
    if len(probabilities) <= _EXACT_UNIVERSE_LIMIT:
        if packed is not None:
            return availability_by_universe_enumeration(packed, probabilities)
        return _availability_by_universe_enumeration(frozen, probabilities)
    if len(frozen) <= _EXACT_QUORUM_LIMIT:
        if packed is not None:
            return availability_by_inclusion_exclusion(packed, probabilities)
        return _availability_by_inclusion_exclusion(frozen, probabilities)
    raise ValueError(
        f"system too large for exact availability "
        f"(n={len(probabilities)}, m={len(frozen)}); "
        "use estimate_availability_monte_carlo"
    )


def _estimate_monte_carlo_reference(
    quorums: tuple[frozenset[Element], ...],
    probabilities: dict[Element, float],
    samples: int,
    seed: int | None,
) -> float:
    """Pre-kernel Monte-Carlo loop: per-quorum column gathers.

    Kept as the reference the packed estimator is tested against — both
    draw the same RNG stream, so the sampled live/dead matrix (and hence
    the estimate) is bit-identical.  The ``hit.all()`` early exit runs every
    ``_EARLY_EXIT_STRIDE`` quorums instead of after each one.
    """
    elements = sorted(probabilities)
    index = {element: i for i, element in enumerate(elements)}
    p_vector = np.array([probabilities[element] for element in elements])

    rng = np.random.default_rng(seed)
    alive = rng.random((samples, len(elements))) < p_vector  # (samples, n)

    hit = np.zeros(samples, dtype=bool)
    for count, quorum in enumerate(quorums, start=1):
        columns = [index[element] for element in quorum]
        hit |= alive[:, columns].all(axis=1)
        if count % _EARLY_EXIT_STRIDE == 0 and hit.all():
            break
    return float(hit.mean())


def estimate_availability_monte_carlo(
    quorums: Iterable[Collection[Element]] | PackedQuorums,
    p: float | Mapping[Element, float],
    universe: Collection[Element] | None = None,
    samples: int = 100_000,
    seed: int | None = 0,
) -> float:
    """Monte-Carlo estimate of quorum-system availability.

    Draws ``samples`` independent live/dead configurations of the universe
    and reports the fraction in which some quorum is fully live.  The default
    fixed seed makes results reproducible; pass ``seed=None`` for fresh
    randomness.  Integer universes run on the bitset kernel: samples are
    packed into live-set masks and whole quorum batches are tested with
    word-wise ANDs, with one early-exit check per batch.
    """
    frozen, universe, packed = _coerce(quorums, universe)
    probabilities = _normalise_probabilities(universe, p)
    if not frozen:
        return 0.0
    if packed is None:
        packed = try_pack(frozen, universe)
    if packed is not None:
        return estimate_availability_monte_carlo_packed(
            packed, probabilities, samples, seed
        )
    return _estimate_monte_carlo_reference(frozen, probabilities, samples, seed)


def system_availability(
    quorums: Iterable[Collection[Element]] | PackedQuorums,
    p: float | Mapping[Element, float],
    universe: Collection[Element] | None = None,
    samples: int = 100_000,
    seed: int | None = 0,
) -> float:
    """Availability via the exact method when feasible, else Monte-Carlo."""
    frozen, universe, packed = _coerce(quorums, universe)
    source = packed if packed is not None else frozen
    n = len(frozenset(universe))
    if n <= _EXACT_UNIVERSE_LIMIT or len(frozen) <= _EXACT_QUORUM_LIMIT:
        return exact_availability(source, p, universe=universe)
    return estimate_availability_monte_carlo(
        source, p, universe=universe, samples=samples, seed=seed
    )


def operation_availability(
    system,
    p: float | Mapping[Element, float],
    op: str = "read",
    samples: int = 100_000,
    seed: int | None = 0,
    max_quorums: int = 200_000,
) -> float:
    """Availability of one operation of a quorum system.

    ``system`` is anything implementing the
    :class:`~repro.quorums.system.QuorumSystem` interface (``universe`` plus
    ``read_quorums()``/``write_quorums()``); ``op`` selects the quorum
    collection.  Dispatches to :func:`system_availability`, i.e. exact where
    feasible and Monte-Carlo otherwise.  Enumeration goes through
    ``system.materialise`` when available so a ``CachedQuorumSystem`` serves
    its memoized collection instead of re-draining its iterators.
    """
    if op not in ("read", "write"):
        raise ValueError(f"op must be 'read' or 'write', got {op!r}")
    if hasattr(system, "materialise"):
        quorums = system.materialise(op, max_quorums)
    else:  # pragma: no cover - duck-typed minimal systems
        quorums = system.read_quorums() if op == "read" else system.write_quorums()
    return system_availability(
        quorums, p, universe=system.universe, samples=samples, seed=seed
    )


def best_not_to_replicate(p: float) -> bool:
    """Peleg-Wool criterion: with per-replica availability below 1/2 the
    most available "quorum system" is a single centralised site (the paper
    cites this to justify assuming ``p > 1/2``)."""
    return p < 0.5
