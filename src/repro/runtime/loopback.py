"""The minimal in-process :class:`~repro.runtime.interfaces.Transport`.

A loopback transport is the seam's existence proof: it implements exactly
the surface protocol code is allowed to use — a clock, an endpoint
registry, ``send``/``broadcast`` with a fixed delivery delay, and the
liveness-epoch counter — and *nothing* simulator-specific (no
``scheduler`` attribute, no RNG, no partitions).  The conformance suite
runs the full coordinator/site protocol over it to prove the protocol
layer never reaches past the seam; it works identically over the
simulator's :class:`~repro.sim.events.Scheduler` (virtual time) and the
runtime's :class:`~repro.runtime.clock.AsyncClock` (wall time).
"""

from __future__ import annotations

from typing import Any

from repro.runtime.interfaces import Clock, Endpoint


class LoopbackTransport:
    """Direct in-process delivery after a fixed per-message delay."""

    def __init__(self, clock: Clock, delay: float = 0.0) -> None:
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self._clock = clock
        self._delay = delay
        self._endpoints: dict[int, Endpoint] = {}
        self._liveness_epoch = 0
        #: Deliveries dropped because the destination was missing or down.
        self.dropped = 0
        #: Messages handed to :meth:`send`/:meth:`broadcast`.
        self.sent = 0

    @property
    def clock(self) -> Clock:
        """The clock deliveries are timed by."""
        return self._clock

    # -- registry ------------------------------------------------------

    def register(self, sid: int, endpoint: Endpoint) -> None:
        """Attach a local endpoint under ``sid``."""
        if sid in self._endpoints:
            raise ValueError(f"SID {sid} already registered")
        self._endpoints[sid] = endpoint

    def endpoint(self, sid: int) -> Endpoint:
        """Look up a registered endpoint."""
        return self._endpoints[sid]

    # -- liveness epochs ----------------------------------------------

    @property
    def liveness_epoch(self) -> int:
        """Counter bumped whenever any endpoint's liveness can change."""
        return self._liveness_epoch

    def current_liveness_epoch(self) -> int:
        """Bound-method accessor for :attr:`liveness_epoch`."""
        return self._liveness_epoch

    def bump_liveness_epoch(self) -> None:
        """Invalidate cached live-set views (sites call this on crash)."""
        self._liveness_epoch += 1

    # -- delivery ------------------------------------------------------

    def send(self, message: Any) -> None:
        """Deliver after the fixed delay; liveness checked at delivery."""
        self.sent += 1
        self._clock.call_later(self._delay, self._deliver, message)

    def broadcast(self, messages: list) -> None:
        """Send each message in order (same per-message semantics)."""
        for message in messages:
            self.send(message)

    def _deliver(self, message: Any) -> None:
        endpoint = self._endpoints.get(message.dst)
        if endpoint is None or not endpoint.up:
            self.dropped += 1
            return
        endpoint.receive(message)
