"""Unit tests for the trace recorder and span model."""

import math

from repro.obs import (
    NULL_RECORDER,
    Span,
    SpanKind,
    TraceRecorder,
    linear_percentile,
)


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.start_trace("read", 0.0) == 0
        assert NULL_RECORDER.start_span(0, 0, "x", SpanKind.PHASE, 0.0) == 0
        # none of these may raise or allocate state
        NULL_RECORDER.end_span(0, 1.0)
        NULL_RECORDER.event(0, 0, "timeout", 1.0)
        NULL_RECORDER.count("message.sent", "ReadRequest")
        NULL_RECORDER.observe("lock.wait", 1.0)


class TestTraceRecorder:
    def test_trace_and_span_lifecycle(self):
        recorder = TraceRecorder()
        trace = recorder.start_trace("write", 1.0, key="k1")
        child = recorder.start_span(
            trace, trace, "phase/version", SpanKind.PHASE, 2.0, quorum=3
        )
        recorder.end_span(child, 5.0)
        recorder.end_span(trace, 6.0, status="ok", attempts=1)

        spans = recorder.finished_spans()
        assert [s.name for s in spans] == ["write", "phase/version"]
        root, phase = spans
        assert root.trace_id == root.span_id == trace
        assert root.parent_id is None
        assert root.attributes["key"] == "k1"
        assert root.attributes["attempts"] == 1
        assert phase.parent_id == trace
        assert phase.duration == 3.0
        assert recorder.open_spans() == []

    def test_end_span_is_idempotent(self):
        recorder = TraceRecorder()
        trace = recorder.start_trace("read", 0.0)
        recorder.end_span(trace, 4.0, status="ok")
        recorder.end_span(trace, 9.0, status="timeout")
        assert recorder.spans[trace].end == 4.0
        assert recorder.spans[trace].status == "ok"

    def test_end_unknown_or_zero_span_is_noop(self):
        recorder = TraceRecorder()
        recorder.end_span(0, 1.0)
        recorder.end_span(42, 1.0)
        assert recorder.spans == {}

    def test_event_is_a_closed_point_span(self):
        recorder = TraceRecorder()
        trace = recorder.start_trace("read", 0.0)
        recorder.event(trace, trace, "timeout", 3.0, stage="read")
        events = [s for s in recorder.spans.values() if s.kind is SpanKind.EVENT]
        assert len(events) == 1
        assert events[0].start == events[0].end == 3.0
        assert events[0].duration == 0.0

    def test_counters_accumulate(self):
        recorder = TraceRecorder()
        recorder.count("message.sent", "ReadRequest")
        recorder.count("message.sent", "ReadRequest")
        recorder.count("message.dropped.loss", "ReadRequest")
        assert recorder.counters["message.sent"]["ReadRequest"] == 2
        assert recorder.counters["message.dropped.loss"]["ReadRequest"] == 1

    def test_metrics_and_summaries(self):
        recorder = TraceRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.observe("lock.wait", value)
        summary = recorder.metric_summaries()["lock.wait"]
        assert summary["count"] == 3
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_traces_grouping(self):
        recorder = TraceRecorder()
        a = recorder.start_trace("read", 0.0)
        b = recorder.start_trace("write", 1.0)
        recorder.start_span(a, a, "phase/read", SpanKind.PHASE, 1.0)
        grouped = recorder.traces()
        assert set(grouped) == {a, b}
        assert len(grouped[a]) == 2 and len(grouped[b]) == 1


class TestSpanSerialisation:
    def test_round_trip(self):
        span = Span(
            trace_id=7, span_id=9, parent_id=7, name="phase/commit",
            kind=SpanKind.PHASE, start=1.5, end=4.5, status="ok",
            attributes={"quorum": 3, "op": "write"},
        )
        assert Span.from_dict(span.to_dict()) == span


class TestLinearPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(linear_percentile([], 0.5))

    def test_out_of_range_fraction_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            linear_percentile([1.0], 1.5)
