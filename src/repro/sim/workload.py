"""Client workload generation.

A :class:`Workload` issues a stream of read/write operations against a
coordinator: the read/write mix, arrival process and key popularity are all
configurable.  The workload is the empirical counterpart of the paper's
"frequencies of read and write operations" that drive tree configuration.

Scale notes (millions of keys, millions of arrivals):

* Zipf key popularity is sampled through **precomputed cumulative
  weights** — ``random.choices(cum_weights=...)`` bisects in O(log keys)
  per operation instead of re-accumulating an O(keys) weight list per
  pick, so a million-key spec samples at the same per-op cost as a
  sixteen-key one.  The cumulative list is exactly
  ``itertools.accumulate`` of the old per-rank weights, which is what
  ``random.choices(weights=...)`` built internally, so the sampled key
  stream is bit-identical to the old implementation.
* Poisson arrivals are scheduled **incrementally**: each arrival event
  schedules its successor, so the event heap holds one pending arrival
  instead of all N at t=0.  Inter-arrival gaps come from a dedicated
  arrival RNG (derived from the workload stream with one ``getrandbits``
  draw) so the gap draws never interleave with the key/op-type draws —
  the chained schedule is bit-identical to the old draw-everything-
  upfront schedule over the same arrival stream.
* ``diurnal_period`` / ``diurnal_amplitude`` turn the constant-rate
  Poisson process into a time-varying one (intensity
  ``rate * (1 + amplitude * sin(2 pi t / period))``) via Lewis-Shedler
  thinning — the open-loop analogue of a day/night load curve.
* a ``dispatcher`` routes each picked key to a coordinator (and an
  optional per-operation outcome sink) — this is how the sharded store
  sends every key to its shard's replica group instead of assuming a
  single replicated object.
"""

from __future__ import annotations

import math
import random
from bisect import bisect
from collections.abc import Callable
from dataclasses import dataclass
from itertools import accumulate

from collections.abc import Sequence

from repro.sim.coordinator import OperationOutcome, QuorumCoordinator
from repro.sim.events import Scheduler

#: A dispatcher maps a key index to the coordinator that should serve it,
#: plus an optional outcome sink invoked (before the workload's global
#: ``on_outcome``) when the operation finishes — the sharded store uses the
#: sink for per-shard accounting and load-balancer bookkeeping.
Dispatcher = Callable[
    [int],
    tuple[QuorumCoordinator, Callable[[OperationOutcome], None] | None],
]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a workload.

    Attributes
    ----------
    operations:
        Total number of operations to issue.
    read_fraction:
        Probability each operation is a read (the paper's read frequency).
    keys:
        Size of the key space (keys are ``"k0" .. f"k{keys-1}"``).
    arrival:
        ``"closed"`` — issue the next operation when the previous one
        finishes (one outstanding op; cleanest for load measurement), or
        ``"poisson"`` — open-loop Poisson arrivals at ``rate`` ops per time
        unit (exercises locking and concurrency).
    rate:
        Arrival rate for the Poisson process (the *mean* rate when a
        diurnal curve is configured).
    zipf_s:
        Zipf skew for key popularity; 0 means uniform.
    diurnal_period:
        Length of one diurnal cycle in simulated time units; 0 disables
        the curve (constant-rate Poisson, the legacy behaviour).
    diurnal_amplitude:
        Relative swing of the diurnal curve in ``[0, 1]``: the
        instantaneous intensity is
        ``rate * (1 + amplitude * sin(2 pi t / period))``, so 1.0 swings
        between 0 and twice the mean rate.
    """

    operations: int = 1000
    read_fraction: float = 0.5
    keys: int = 16
    arrival: str = "closed"
    rate: float = 1.0
    zipf_s: float = 0.0
    diurnal_period: float = 0.0
    diurnal_amplitude: float = 0.0

    def __post_init__(self) -> None:
        if self.operations < 0:
            raise ValueError("operations must be non-negative")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.keys < 1:
            raise ValueError("need at least one key")
        if self.arrival not in ("closed", "poisson"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.arrival == "poisson" and self.rate <= 0:
            raise ValueError("poisson arrivals need a positive rate")
        if self.zipf_s < 0:
            raise ValueError("zipf skew must be non-negative")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1]")
        if self.diurnal_amplitude > 0.0:
            if self.arrival != "poisson":
                raise ValueError("diurnal curves need poisson arrivals")
            if self.diurnal_period <= 0.0:
                raise ValueError("diurnal curves need a positive period")

    def rate_at(self, t: float) -> float:
        """Instantaneous Poisson intensity at simulated time ``t``."""
        if self.diurnal_amplitude == 0.0:
            return self.rate
        return self.rate * (
            1.0
            + self.diurnal_amplitude
            * math.sin(2.0 * math.pi * t / self.diurnal_period)
        )

    @property
    def peak_rate(self) -> float:
        """The diurnal curve's maximum intensity (the thinning envelope)."""
        return self.rate * (1.0 + self.diurnal_amplitude)


class Workload:
    """Drives one or more coordinators according to a :class:`WorkloadSpec`.

    ``dispatcher`` overrides the default round-robin coordinator choice:
    each operation's key index is routed through it (the sharded store
    plugs its router + load balancer in here), and the optional per-op
    sink it returns runs before the workload-wide ``on_outcome``.
    """

    def __init__(
        self,
        spec: WorkloadSpec,
        coordinator: QuorumCoordinator | Sequence[QuorumCoordinator],
        scheduler: Scheduler,
        rng: random.Random,
        on_outcome: Callable[[OperationOutcome], None],
        on_complete: Callable[[], None] | None = None,
        dispatcher: Dispatcher | None = None,
    ) -> None:
        self._spec = spec
        if isinstance(coordinator, QuorumCoordinator):
            self._coordinators: tuple[QuorumCoordinator, ...] = (coordinator,)
        else:
            self._coordinators = tuple(coordinator)
            if not self._coordinators:
                raise ValueError("need at least one coordinator")
        self._scheduler = scheduler
        self._rng = rng
        self._on_outcome = on_outcome
        self._on_complete = on_complete
        self._dispatcher = dispatcher
        self._issued = 0
        self._completed = 0
        self._scheduled_arrivals = 0
        self._next_arrival_at = 0.0
        self._arrival_rng: random.Random | None = None
        self._next_value = 0
        self._cum_weights = self._build_cum_weights()
        #: key index -> interned "k<i>" name, filled on first use.  Under
        #: a Zipf-skewed draw the hit rate is high and a dict probe beats
        #: re-formatting the f-string on every operation; lazy (not a
        #: prebuilt list) so million-key specs pay only for keys touched.
        self._key_names: dict[int, str] = {}

    def _build_cum_weights(self) -> list[float] | None:
        """Cumulative Zipf weights, computed once per workload.

        ``random.choices(weights=w)`` accumulates ``w`` on *every call* —
        O(keys) per operation, which is what made million-key specs
        unusable.  Accumulating here once and passing ``cum_weights=``
        keeps each pick at one O(log keys) bisect while drawing exactly
        the same stream (``choices`` bisects the identical cumulative
        list either way).
        """
        if self._spec.zipf_s == 0.0:
            return None
        return list(accumulate(
            1.0 / (rank**self._spec.zipf_s)
            for rank in range(1, self._spec.keys + 1)
        ))

    def _pick_key_index(self) -> int:
        cum_weights = self._cum_weights
        if cum_weights is None:
            return self._rng.randrange(self._spec.keys)
        # Inlined ``random.choices(cum_weights=...)`` for a single draw:
        # choices wraps exactly this one random() + bisect in a k=1 list
        # comprehension plus argument validation, all per call.  Same
        # draw, same bisect bounds — the stream stays bit-identical
        # (guarded by the workload bit-identity regression tests).
        return bisect(
            cum_weights,
            self._rng.random() * cum_weights[-1],
            0,
            self._spec.keys - 1,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin issuing operations."""
        if self._spec.operations == 0:
            self._maybe_complete()
            return
        if self._spec.arrival == "closed":
            self._issue_one()
        else:
            # Gap draws live on their own child stream so that chaining
            # them through arrival events (instead of drawing all of them
            # up front) cannot interleave with — and thereby perturb —
            # the key/op-type draws on the main workload stream.
            self._arrival_rng = random.Random(self._rng.getrandbits(64))
            self._schedule_next_arrival()

    def _next_gap(self) -> float:
        """One inter-arrival gap, via thinning when a diurnal curve is on.

        Lewis-Shedler: propose exponential gaps at the envelope (peak)
        rate and accept each proposal with probability
        ``rate(t) / peak_rate`` — the accepted points form an
        inhomogeneous Poisson process with exactly the diurnal intensity.
        """
        spec = self._spec
        rng = self._arrival_rng
        assert rng is not None
        if spec.diurnal_amplitude == 0.0:
            return rng.expovariate(spec.rate)
        peak = spec.peak_rate
        t = self._next_arrival_at
        while True:
            t += rng.expovariate(peak)
            if rng.random() * peak <= spec.rate_at(t):
                return t - self._next_arrival_at

    def _schedule_next_arrival(self) -> None:
        """Chain-schedule the next open-loop arrival (one in flight).

        The previous implementation pushed all N arrival events onto the
        heap at t=0 — O(operations) heap memory and an O(N log N) start
        transient.  Each arrival now schedules its successor, so the heap
        holds a single pending arrival regardless of workload size.
        """
        if self._scheduled_arrivals >= self._spec.operations:
            return
        self._scheduled_arrivals += 1
        self._next_arrival_at += self._next_gap()
        # call_at == schedule_at minus the EventHandle nobody keeps
        # (arrivals are never cancelled); same float round-trip, so the
        # event times are bit-identical.
        self._scheduler.call_at(self._next_arrival_at, self._arrive)

    def _arrive(self) -> None:
        self._schedule_next_arrival()
        self._issue_one()

    def _issue_one(self) -> None:
        if self._issued >= self._spec.operations:
            return
        key_index = self._pick_key_index()
        if self._dispatcher is None:
            coordinator = self._coordinators[
                self._issued % len(self._coordinators)
            ]
            done: Callable[[OperationOutcome], None] = self._op_done
        else:
            coordinator, sink = self._dispatcher(key_index)
            if sink is None:
                done = self._op_done
            else:
                def done(outcome: OperationOutcome, _sink=sink) -> None:
                    _sink(outcome)
                    self._op_done(outcome)
        self._issued += 1
        key = self._key_names.get(key_index)
        if key is None:
            key = self._key_names[key_index] = f"k{key_index}"
        if self._rng.random() < self._spec.read_fraction:
            coordinator.read(key, done)
        else:
            value = f"v{self._next_value}"
            self._next_value += 1
            coordinator.write(key, value, done)

    def add_on_complete(self, callback: Callable[[], None]) -> None:
        """Chain a completion hook (fires once, after any existing hook).

        The engine uses this to stop the scheduler's drain loop the
        instant the last outcome reports; chaining keeps any hook the
        workload was constructed with intact.
        """
        prev = self._on_complete
        if prev is None:
            self._on_complete = callback
        else:
            def chained() -> None:
                prev()
                callback()
            self._on_complete = chained

    def _op_done(self, outcome: OperationOutcome) -> None:
        self._completed += 1
        self._on_outcome(outcome)
        if self._spec.arrival == "closed" and self._issued < self._spec.operations:
            self._issue_one()
        self._maybe_complete()

    def _maybe_complete(self) -> None:
        if self._completed >= self._spec.operations and self._on_complete:
            callback, self._on_complete = self._on_complete, None
            callback()

    @property
    def spec(self) -> WorkloadSpec:
        """The workload's parameters."""
        return self._spec

    @property
    def coordinators(self) -> tuple[QuorumCoordinator, ...]:
        """The coordinators operations are round-robined over."""
        return self._coordinators

    @property
    def issued(self) -> int:
        """Operations issued so far."""
        return self._issued

    @property
    def completed(self) -> int:
        """Operations whose outcome has been reported."""
        return self._completed
