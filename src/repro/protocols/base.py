"""Common interface for replica control protocol models.

A :class:`ProtocolModel` is a :class:`~repro.quorums.system.QuorumSystem`
over replicas ``0..n-1`` that additionally bundles the four analytic
quantities the paper compares protocols by — read/write communication cost,
read/write availability, and read/write optimal system load — as *closed
forms*, overriding the generic enumeration-based analyses of the unified
layer so every size stays tractable.  Explicit quorum enumeration (where
implemented) lets small instances be cross-checked against the LP-based
load computation and the exact availability machinery in
:mod:`repro.quorums`.

Costs reported by :meth:`read_cost` / :meth:`write_cost` are the *average*
number of replicas contacted under the protocol's quorum-picking strategy,
matching the series plotted in the paper's Figure 2.
"""

from __future__ import annotations

import abc
from collections.abc import Iterator

from repro.quorums.system import QuorumSystem


class ProtocolModel(QuorumSystem, abc.ABC):
    """Analytic model of a replica control protocol over ``n`` replicas."""

    #: Human-readable protocol name (used in bench output tables).
    name: str = "abstract"

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("a protocol needs at least one replica")
        self._n = n

    @property
    def n(self) -> int:
        """Number of replicas in the system."""
        return self._n

    @property
    def universe(self) -> frozenset[int]:
        """Replica SIDs ``0..n-1`` (every model uses contiguous SIDs)."""
        return frozenset(range(self._n))

    # -- communication cost (average replicas contacted) -----------------

    @abc.abstractmethod
    def read_cost(self) -> float:
        """Average number of replicas contacted by a read operation."""

    @abc.abstractmethod
    def write_cost(self) -> float:
        """Average number of replicas contacted by a write operation."""

    # -- availability under i.i.d. replica up-probability p ---------------

    @abc.abstractmethod
    def read_availability(self, p: float) -> float:
        """Probability that some read quorum is fully live."""

    @abc.abstractmethod
    def write_availability(self, p: float) -> float:
        """Probability that some write quorum is fully live."""

    # -- optimal system load ----------------------------------------------

    @abc.abstractmethod
    def read_load(self) -> float:
        """Optimal system load induced by read operations."""

    @abc.abstractmethod
    def write_load(self) -> float:
        """Optimal system load induced by write operations."""

    # -- unified-layer accessors dispatch to the closed forms --------------

    def load(self, op: str = "read") -> float:
        """Optimal system load of one operation (closed form, any size)."""
        if op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        return self.read_load() if op == "read" else self.write_load()

    def availability(self, p: float, op: str = "read") -> float:
        """Availability of one operation (closed form, any size)."""
        if op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', got {op!r}")
        return (
            self.read_availability(p) if op == "read"
            else self.write_availability(p)
        )

    # -- expected loads (the paper's Equation 3.2) ------------------------

    def expected_read_load(self, p: float) -> float:
        """``E[L_RD] = A_rd (L_rd - 1) + 1`` — Equation 3.2 applied to this
        protocol's read availability and optimal read load."""
        availability = self.read_availability(p)
        return availability * (self.read_load() - 1.0) + 1.0

    def expected_write_load(self, p: float) -> float:
        """``E[L_WR] = A_wr L_wr + (1 - A_wr)`` — Equation 3.2."""
        availability = self.write_availability(p)
        return availability * self.write_load() + (1.0 - availability)

    # -- optional explicit quorum enumeration ------------------------------

    def read_quorums(self) -> Iterator[frozenset[int]]:
        """Enumerate read quorums (override where tractable)."""
        raise NotImplementedError(f"{self.name} does not enumerate read quorums")

    def write_quorums(self) -> Iterator[frozenset[int]]:
        """Enumerate write quorums (override where tractable)."""
        raise NotImplementedError(f"{self.name} does not enumerate write quorums")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self._n})"


def check_probability(p: float) -> None:
    """Shared probability-domain validation for availability formulas."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"availability probability must be in [0, 1], got {p}")
