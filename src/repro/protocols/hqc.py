"""Hierarchical Quorum Consensus (HQC) — Kumar [8].

The replicas are the *leaves* of a complete ternary tree of depth ``l``
(``n = 3^l``); interior nodes are purely logical.  A quorum is assembled
top-down by picking a (sub)quorum in 2 of the 3 subtrees at every interior
node, so quorums have exactly ``2^l = n^{log_3 2} ~ n^0.63`` leaves.  Two
quorums always intersect (majorities of majorities), so one quorum set
serves both reads and writes.

Naor & Wool [10] computed the optimal load of this system: ``(2/3)^l =
n^{log_3 2 - 1} ~ n^{-0.37}`` — better than tree quorums but short of the
``1/sqrt(n)`` optimum.  Availability satisfies the 2-of-3 majority
recursion ``A(0) = p``, ``A(l) = 3 a^2 (1 - a) + a^3`` with ``a = A(l-1)``.

The paper generalises HQC: its logical/physical node distinction is lifted
from the HQC hierarchy, but quorums are re-organised per *level* rather than
per *subtree*.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator
from itertools import combinations

from repro.protocols.base import ProtocolModel, check_probability
from repro.quorums.liveness import Liveness, LivenessOracle, as_oracle

#: Exponent of the HQC quorum size: log_3(2).
HQC_COST_EXPONENT = math.log(2) / math.log(3)

#: Exponent of the HQC optimal load: log_3(2) - 1 (about -0.37).
HQC_LOAD_EXPONENT = HQC_COST_EXPONENT - 1.0

__all__ = [
    "HQCProtocol",
    "HQC_COST_EXPONENT",
    "HQC_LOAD_EXPONENT",
    "LivenessOracle",
    "hqc_sizes",
    "ternary_depth",
]


def ternary_depth(n: int) -> int:
    """Depth ``l`` with ``n = 3^l``; raises for other ``n``."""
    if n < 1:
        raise ValueError("need at least one replica")
    depth = round(math.log(n, 3))
    if 3**depth != n:
        raise ValueError(f"n={n} is not a power of 3")
    return depth


def hqc_sizes(max_depth: int) -> list[int]:
    """Admissible system sizes ``3^l`` for ``l`` up to ``max_depth``."""
    return [3**depth for depth in range(max_depth + 1)]


class HQCProtocol(ProtocolModel):
    """Kumar's hierarchical quorum consensus on a complete ternary tree.

    SIDs ``0..n-1`` are the leaves in left-to-right order; the subtree of
    size ``3^d`` starting at offset ``o`` covers SIDs ``[o, o + 3^d)``.
    """

    name = "HQC"

    #: Recursive 2-of-3 subtree preference is not uniform over the
    #: enumerated quorums — keep the structural path in the simulator.
    uniform_selection = False

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._depth = ternary_depth(n)

    @property
    def depth(self) -> int:
        """The depth ``l`` of the ternary hierarchy (``n = 3^l``)."""
        return self._depth

    # ------------------------------------------------------------------
    # quorum construction
    # ------------------------------------------------------------------

    def construct_quorum(
        self,
        live: Liveness,
        rng: random.Random | None = None,
    ) -> frozenset[int] | None:
        """Assemble a quorum from live replicas, or ``None``.

        At every interior node any 2 of the 3 subtrees must recursively
        yield sub-quorums.  With ``rng`` subtree preference is randomised;
        otherwise the leftmost viable pair is used.
        """
        oracle = as_oracle(live)

        def solve(offset: int, depth: int) -> frozenset[int] | None:
            if depth == 0:
                return frozenset({offset}) if oracle(offset) else None
            third = 3 ** (depth - 1)
            subtrees = [offset, offset + third, offset + 2 * third]
            if rng is not None:
                rng.shuffle(subtrees)
            solved: list[frozenset[int]] = []
            for start in subtrees:
                sub = solve(start, depth - 1)
                if sub is not None:
                    solved.append(sub)
                if len(solved) == 2:
                    return solved[0] | solved[1]
            return None

        return solve(0, self._depth)

    def select_read_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """Reads use the hierarchical construction."""
        return self.construct_quorum(live, rng)

    def select_write_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """Writes share the read quorums (majorities of majorities)."""
        return self.construct_quorum(live, rng)

    def enumerate_quorums(self, max_quorums: int = 200_000) -> Iterator[frozenset[int]]:
        """Enumerate every HQC quorum (count ``c(l) = 3 c(l-1)^2``).

        3, 27, 2187, ... for ``l`` = 1, 2, 3; guarded against explosion.
        """
        if self.quorum_count() > max_quorums:
            raise ValueError(
                f"{self.quorum_count()} quorums exceed the limit {max_quorums}"
            )

        def solve(offset: int, depth: int) -> list[frozenset[int]]:
            if depth == 0:
                return [frozenset({offset})]
            third = 3 ** (depth - 1)
            subtrees = [
                solve(offset + i * third, depth - 1) for i in range(3)
            ]
            quorums: list[frozenset[int]] = []
            for a, b in combinations(range(3), 2):
                for qa in subtrees[a]:
                    for qb in subtrees[b]:
                        quorums.append(qa | qb)
            return quorums

        yield from solve(0, self._depth)

    def quorum_count(self) -> int:
        """``c(0) = 1``, ``c(l) = 3 c(l-1)^2``."""
        count = 1
        for _ in range(self._depth):
            count = 3 * count * count
        return count

    def read_quorums(self) -> Iterator[frozenset[int]]:
        """Reads and writes share the same hierarchical quorums."""
        return self.enumerate_quorums()

    def write_quorums(self) -> Iterator[frozenset[int]]:
        """Reads and writes share the same hierarchical quorums."""
        return self.enumerate_quorums()

    # ------------------------------------------------------------------
    # analytic quantities
    # ------------------------------------------------------------------

    def quorum_size(self) -> int:
        """Every quorum has exactly ``2^l = n^0.63`` members."""
        return 2**self._depth

    def read_cost(self) -> float:
        """``n^0.63`` (the paper's quoted HQC cost)."""
        return float(self.quorum_size())

    def write_cost(self) -> float:
        """``n^0.63`` — identical to reads."""
        return float(self.quorum_size())

    def availability(self, p: float, op: str = "read") -> float:
        """2-of-3 majority recursion: ``A(l) = 3a^2(1-a) + a^3``.

        ``op`` is accepted for unified-layer compatibility and ignored —
        reads and writes share the one quorum set.
        """
        check_probability(p)
        availability = p
        for _ in range(self._depth):
            a = availability
            availability = 3.0 * a * a * (1.0 - a) + a**3
        return availability

    def read_availability(self, p: float) -> float:
        """Same recursion for reads and writes."""
        return self.availability(p)

    def write_availability(self, p: float) -> float:
        """Same recursion for reads and writes."""
        return self.availability(p)

    def optimal_load(self) -> float:
        """``(2/3)^l = n^(log_3 2 - 1) ~ n^-0.37`` ([10], Section 6.4)."""
        return (2.0 / 3.0) ** self._depth

    def read_load(self) -> float:
        """Reads and writes share the optimal load ``n^-0.37``."""
        return self.optimal_load()

    def write_load(self) -> float:
        """Reads and writes share the optimal load ``n^-0.37``."""
        return self.optimal_load()
