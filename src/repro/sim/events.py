"""Deterministic discrete-event scheduler.

A minimal event kernel: callbacks are scheduled at absolute simulation
times and executed in (time, insertion-order) order, so two events at the
same instant fire in the order they were scheduled — this makes every
simulation run bit-for-bit reproducible for a fixed RNG seed.

Queue entries are plain three-slot lists ``[time, sequence, callback]``
rather than dataclass instances: the scheduler is the simulator's inner
ring (every message delivery and timeout passes through it), and list
construction + elementwise comparison is measurably cheaper than object
allocation with ``__lt__`` dispatch.  The unique, monotonically
increasing sequence number guarantees heap comparisons never reach the
(incomparable) callback slot and preserves the insertion-order tie-break.
Cancellation clears the callback slot in place (``entry[2] = None``) —
no tombstone flag, no handle bookkeeping beyond the shared list.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any

# Entry slots: [time, sequence, callback-or-None].
_TIME = 0
_SEQ = 1
_CALLBACK = 2


class EventHandle:
    """Handle returned by :meth:`Scheduler.schedule`; allows cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._entry[_CALLBACK] = None

    @property
    def time(self) -> float:
        """Absolute simulation time the event is scheduled for."""
        return self._entry[_TIME]


class Scheduler:
    """Priority-queue event loop with a virtual clock."""

    def __init__(self) -> None:
        self._queue: list[list] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(
        self, delay: float, callback: Callable[[], Any]
    ) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        entry = [self._now + delay, self._sequence, callback]
        self._sequence += 1
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def schedule_at(
        self, time: float, callback: Callable[[], Any]
    ) -> EventHandle:
        """Run ``callback`` at absolute simulation time ``time``."""
        return self.schedule(time - self._now, callback)

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            callback = entry[_CALLBACK]
            if callback is None:
                continue
            self._now = entry[_TIME]
            self._processed += 1
            callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the queue, optionally stopping at a time or event budget.

        ``until`` is an absolute simulation time: events scheduled strictly
        later stay queued and the clock is advanced to ``until``.
        """
        executed = 0
        queue = self._queue
        while queue:
            if max_events is not None and executed >= max_events:
                return
            head = queue[0]
            if head[_CALLBACK] is None:
                heapq.heappop(queue)
                continue
            if until is not None and head[_TIME] > until:
                self._now = until
                return
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = until
