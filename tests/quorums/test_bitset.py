"""Unit tests for the packed-integer quorum kernel (repro.quorums.bitset)."""

import random

import numpy as np
import pytest

from repro.quorums.bitset import (
    PackedQuorums,
    mask_of,
    mask_to_words,
    pack_bool_matrix,
    pack_rows,
    try_pack,
    try_pack_pair,
    words_to_mask,
)


class TestPackingRoundTrip:
    def test_masks_and_frozensets_round_trip(self):
        quorums = [{0, 2, 5}, {1}, {0, 1, 2, 3, 4, 5}]
        packed = PackedQuorums.from_quorums(quorums, universe=range(6))
        assert packed.to_frozensets() == tuple(frozenset(q) for q in quorums)
        assert packed.masks() == [0b100101, 0b000010, 0b111111]

    def test_non_contiguous_universe(self):
        packed = PackedQuorums.from_quorums(
            [{10, 30}, {20}], universe={10, 20, 30}
        )
        # Sorted universe -> bit order 10, 20, 30.
        assert packed.masks() == [0b101, 0b010]
        assert packed.to_frozensets() == (frozenset({10, 30}), frozenset({20}))

    def test_multi_word_round_trip(self):
        # n = 130 spans three 64-bit words.
        quorums = [{0, 63, 64, 129}, {65}, set(range(130))]
        packed = PackedQuorums.from_quorums(quorums, universe=range(130))
        assert packed.words == 3
        assert packed.to_frozensets() == tuple(frozenset(q) for q in quorums)
        expected = (1 << 0) | (1 << 63) | (1 << 64) | (1 << 129)
        assert packed.masks()[0] == expected

    def test_mask_word_round_trip(self):
        mask = (1 << 129) | (1 << 64) | 0b1011
        assert words_to_mask(mask_to_words(mask, 3)) == mask

    def test_pack_rows_matches_from_quorums(self):
        quorums = [frozenset({1, 2}), frozenset({0, 2})]
        packed = PackedQuorums.from_quorums(quorums, universe=range(3))
        rows = pack_rows(quorums, packed.index, packed.words)
        assert (rows == packed.matrix).all()


class TestKernelOps:
    def test_popcounts_match_lengths(self):
        quorums = [set(range(i + 1)) for i in range(70)]
        packed = PackedQuorums.from_quorums(quorums, universe=range(70))
        assert packed.popcounts().tolist() == [len(q) for q in quorums]

    def test_membership_matrix_matches_cells(self):
        quorums = [{0, 2}, {1, 2}, {2}]
        packed = PackedQuorums.from_quorums(quorums, universe=range(3))
        matrix = packed.membership_matrix()
        assert matrix.shape == (3, 3)
        for col, quorum in enumerate(quorums):
            for row, element in enumerate(range(3)):
                assert matrix[row, col] == (1.0 if element in quorum else 0.0)

    def test_live_filter_subset_semantics(self):
        packed = PackedQuorums.from_quorums(
            [{0, 1}, {2}, {0, 2}], universe=range(3)
        )
        live = packed.pack_live({0, 2})
        assert packed.live_filter(live).tolist() == [False, True, True]

    def test_live_filter_empty_live_set(self):
        packed = PackedQuorums.from_quorums([{0}, {1, 2}], universe=range(3))
        live = packed.pack_live(())
        assert not packed.live_filter(live).any()
        assert packed.first_live(live) is None
        assert packed.select(live, random.Random(0)) is None

    def test_live_set_with_foreign_sids_is_projected(self):
        packed = PackedQuorums.from_quorums([{0, 1}], universe=range(2))
        live = packed.pack_live({0, 1, 99, -5})
        assert packed.live_filter(live).tolist() == [True]

    def test_n_equals_one(self):
        packed = PackedQuorums.from_quorums([{0}], universe={0})
        assert packed.n == 1 and packed.words == 1
        assert packed.first_live(packed.pack_live({0})) == 0
        assert packed.first_live(packed.pack_live(set())) is None

    def test_multi_word_live_filter(self):
        quorums = [{0, 100}, {64, 65}, {127}]
        packed = PackedQuorums.from_quorums(quorums, universe=range(128))
        live = packed.pack_live({0, 100, 127})
        assert packed.live_filter(live).tolist() == [True, False, True]

    def test_select_matches_reservoir_reference(self):
        quorums = [frozenset({i, i + 1}) for i in range(40)]
        packed = PackedQuorums.from_quorums(quorums, universe=range(41))
        live_set = set(range(0, 41, 1)) - {7, 20}
        live = packed.pack_live(live_set)
        for seed in range(10):
            rng = random.Random(seed)
            got = packed.select(live, rng)
            # Reference reservoir over the same viable sequence.
            rng2 = random.Random(seed)
            chosen, viable = None, 0
            for i, quorum in enumerate(quorums):
                if quorum <= live_set:
                    viable += 1
                    if rng2.randrange(viable) == 0:
                        chosen = i
            assert got == chosen

    def test_cross_intersects_requires_shared_universe(self):
        a = PackedQuorums.from_quorums([{0}], universe=range(2))
        b = PackedQuorums.from_quorums([{0}], universe=range(3))
        with pytest.raises(ValueError):
            a.cross_intersects(b)

    def test_cross_intersects_multi_word(self):
        reads = [{0, 70}, {1, 71}]
        writes = [{0, 1}, {70, 71}]
        packed_reads, packed_writes = try_pack_pair(reads, writes)
        assert packed_reads.cross_intersects(packed_writes)
        packed_reads, packed_writes = try_pack_pair(reads, [{2, 72}])
        assert not packed_reads.cross_intersects(packed_writes)

    def test_superset_counts_flags_duplicates_and_chains(self):
        packed = PackedQuorums.from_quorums(
            [{0}, {0, 1}, {2}, {2}], universe=range(3)
        )
        assert packed.superset_counts().tolist() == [2, 1, 2, 2]


class TestBoolPacking:
    def test_pack_bool_matrix_matches_masks(self):
        rng = np.random.default_rng(5)
        for n in (1, 8, 64, 65, 130):
            alive = rng.random((17, n)) < 0.6
            words = pack_bool_matrix(alive)
            assert words.shape == (17, max(1, -(-n // 64)))
            for row in range(17):
                expected = sum(1 << i for i in range(n) if alive[row, i])
                assert words_to_mask(words[row]) == expected


class TestDispatch:
    def test_try_pack_rejects_non_integer_universe(self):
        assert try_pack([{"a", "b"}, {"b"}]) is None
        assert try_pack_pair([{"a"}], [{"a"}]) is None

    def test_try_pack_accepts_negative_ints(self):
        packed = try_pack([{-3, 4}, {0}])
        assert packed is not None
        assert packed.to_frozensets() == (frozenset({-3, 4}), frozenset({0}))

    def test_mask_of(self):
        index = {5: 0, 9: 1, 11: 2}
        assert mask_of({5, 11}, index) == 0b101


class TestFromSystem:
    """The quorum_masks fast path must be a mask twin of quorums(op)."""

    @pytest.mark.parametrize(
        "protocol,n",
        [("majority", 5), ("majority", 13), ("grid", 9), ("grid", 16),
         ("arbitrary", 13)],
    )
    @pytest.mark.parametrize("op", ["read", "write"])
    def test_masks_path_matches_frozenset_path(self, protocol, n, op):
        from repro.protocols.zoo import quorum_system

        system = quorum_system(protocol, n)
        assert system.quorum_masks(op) is not None
        via_masks = PackedQuorums.from_system(system, op)
        via_sets = PackedQuorums.from_quorums(
            system.quorums(op), universe=system.universe
        )
        assert via_masks.elements == via_sets.elements
        # Same matrix AND same row order: enumeration-order consumers
        # (selection's RNG-stream agreement) depend on both.
        assert (via_masks.matrix == via_sets.matrix).all()

    def test_systems_without_the_hook_fall_back(self):
        from repro.protocols.zoo import quorum_system

        system = quorum_system("hqc", 9)
        assert system.quorum_masks("read") is None
        packed = PackedQuorums.from_system(system, "read")
        reference = PackedQuorums.from_quorums(
            system.quorums("read"), universe=system.universe
        )
        assert (packed.matrix == reference.matrix).all()

    def test_quorum_masks_rejects_unknown_op(self):
        from repro.protocols.zoo import quorum_system

        with pytest.raises(ValueError, match="op"):
            quorum_system("majority", 5).quorum_masks("scan")
