"""Unit tests for the discrete-event scheduler."""

import random

import pytest

from repro.sim.events import Scheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(3.0, lambda: fired.append("c"))
        scheduler.schedule(1.0, lambda: fired.append("a"))
        scheduler.schedule(2.0, lambda: fired.append("b"))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        scheduler = Scheduler()
        fired = []
        for tag in "abc":
            scheduler.schedule(1.0, lambda t=tag: fired.append(t))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        scheduler = Scheduler()
        seen = []
        scheduler.schedule(5.0, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [5.0]
        assert scheduler.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="past"):
            Scheduler().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        scheduler = Scheduler()
        scheduler.schedule(2.0, lambda: None)
        scheduler.step()
        handle = scheduler.schedule_at(7.0, lambda: None)
        assert handle.time == 7.0

    def test_events_can_schedule_events(self):
        scheduler = Scheduler()
        fired = []

        def first():
            fired.append("first")
            scheduler.schedule(1.0, lambda: fired.append("second"))

        scheduler.schedule(1.0, first)
        scheduler.run()
        assert fired == ["first", "second"]
        assert scheduler.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        scheduler = Scheduler()
        fired = []
        handle = scheduler.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        scheduler.run()
        assert fired == []

    def test_cancel_after_fire_is_noop(self):
        scheduler = Scheduler()
        handle = scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        handle.cancel()  # must not raise

    def test_cancelled_events_not_counted_as_processed(self):
        scheduler = Scheduler()
        handle = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        handle.cancel()
        scheduler.run()
        assert scheduler.processed_events == 1


class TestRunControls:
    def test_run_until_leaves_later_events(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(5.0, lambda: fired.append(5))
        scheduler.run(until=3.0)
        assert fired == [1]
        assert scheduler.now == 3.0
        assert scheduler.pending_events == 1

    def test_run_until_advances_clock_on_empty_queue(self):
        scheduler = Scheduler()
        scheduler.run(until=10.0)
        assert scheduler.now == 10.0

    def test_run_until_past_horizon_never_rewinds_clock(self):
        """Regression: ``run(until=t)`` with ``t < now`` must be a no-op on
        the clock, not a time-travel device.

        With a far-future event still pending, the in-loop horizon branch
        used to assign ``self._now = until`` unguarded — rewinding virtual
        time and corrupting every relative delay computed afterwards.
        """
        scheduler = Scheduler()
        scheduler.schedule(10.0, lambda: None)
        scheduler.schedule(1e6, lambda: None)  # pending far-future event
        scheduler.run(until=10.0)
        assert scheduler.now == 10.0
        executed = scheduler.run(until=5.0)  # stale horizon in the past
        assert executed == 0
        assert scheduler.now == 10.0  # monotone: not rewound to 5.0
        # And with an *empty* queue the tail path is already guarded.
        scheduler.run()
        now = scheduler.now
        scheduler.run(until=now - 1.0)
        assert scheduler.now == now

    def test_max_events_budget(self):
        scheduler = Scheduler()
        for _ in range(5):
            scheduler.schedule(1.0, lambda: None)
        scheduler.run(max_events=3)
        assert scheduler.processed_events == 3
        assert scheduler.pending_events == 2

    def test_step_returns_false_on_empty(self):
        assert Scheduler().step() is False

    def test_step_executes_one_event(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(2.0, lambda: fired.append(2))
        assert scheduler.step() is True
        assert fired == [1]

    def test_stop_halts_run_and_leaves_queue(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(1.0, lambda: (fired.append(1), scheduler.stop()))
        scheduler.schedule(2.0, lambda: fired.append(2))
        assert scheduler.run() == 1
        assert fired == [1]
        assert scheduler.pending_events == 1
        # The flag was consumed: a fresh run drains the remainder.
        assert scheduler.run() == 1
        assert fired == [1, 2]

    def test_pending_stop_consumed_without_draining(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.stop()  # requested outside any run loop
        assert scheduler.run() == 0
        assert fired == []
        assert scheduler.run() == 1
        assert fired == [1]


class TestArgScheduling:
    def test_schedule_passes_argument(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(1.0, fired.append, "payload")
        scheduler.run()
        assert fired == ["payload"]

    def test_none_is_a_legitimate_argument(self):
        scheduler = Scheduler()
        fired = []
        scheduler.schedule(1.0, fired.append, None)
        scheduler.run()
        assert fired == [None]

    def test_call_later_fires_without_handle(self):
        scheduler = Scheduler()
        fired = []
        assert scheduler.call_later(1.0, fired.append, "x") is None
        scheduler.call_later(2.0, lambda: fired.append("thunk"))
        scheduler.run()
        assert fired == ["x", "thunk"]

    def test_call_later_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="past"):
            Scheduler().call_later(-1.0, lambda: None)

    def test_call_later_and_schedule_share_insertion_order(self):
        scheduler = Scheduler()
        fired = []
        scheduler.call_later(1.0, fired.append, "a")
        scheduler.schedule(1.0, fired.append, "b")
        scheduler.call_later(1.0, fired.append, "c")
        scheduler.run()
        assert fired == ["a", "b", "c"]


class TestCompaction:
    def test_heap_bounded_under_cancel_churn(self):
        """Regression: schedule/cancel churn must not grow the heap unbounded.

        Each cycle mimics a retry timer: arm a far-future timeout, then
        cancel it before it fires.  Before compaction the dead entries
        accumulated until their (distant) times came up — 10_000 cycles
        left ~10_000 corpses.  With in-place compaction the queue stays
        within a small multiple of its live size.
        """
        scheduler = Scheduler()
        alive = scheduler.schedule(1e9, lambda: None)  # one live sentinel
        peak = 0
        for _ in range(10_000):
            handle = scheduler.schedule(1e6, lambda: None)
            handle.cancel()
            peak = max(peak, scheduler.pending_events)
        assert peak < 300  # ~2x the compaction floor, not ~10_000
        assert scheduler.pending_events < 300
        alive.cancel()

    def test_compaction_preserves_pending_count_semantics(self):
        scheduler = Scheduler()
        handles = [scheduler.schedule(float(i + 1), lambda: None)
                   for i in range(200)]
        for handle in handles[::2]:
            handle.cancel()
        # 100 cancelled of 200 triggers compaction (>= 64 and >= half).
        assert scheduler.cancelled_events == 0
        assert scheduler.pending_events == 100
        assert scheduler.run() == 100

    def test_double_cancel_counts_once(self):
        scheduler = Scheduler()
        fired = []
        handle = scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(2.0, lambda: fired.append(2))
        handle.cancel()
        handle.cancel()
        assert scheduler.cancelled_events == 1
        scheduler.run()
        assert fired == [2]


class _ReferenceScheduler:
    """Sorted-list oracle: (time, insertion-order) execution, no heap."""

    def __init__(self):
        self.events = []  # [time, seq, tag, live]
        self.seq = 0
        self.now = 0.0

    def schedule(self, delay, tag):
        entry = [self.now + delay, self.seq, tag, True]
        self.seq += 1
        self.events.append(entry)
        return entry

    def run(self, until=None):
        fired = []
        while True:
            live = [e for e in self.events if e[3]]
            if not live:
                break
            head = min(live)
            if until is not None and head[0] > until:
                self.now = max(self.now, until)
                return fired
            head[3] = False
            self.events.remove(head)
            self.now = head[0]
            fired.append(head[2])
        if until is not None and until > self.now:
            self.now = until
        return fired


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 17])
def test_execution_order_matches_reference_under_churn(seed):
    """Seeded property test: interleaved schedule / schedule_at / cancel /
    partial run(until=...) produce exactly the reference (time, insertion)
    order — including compaction kicking in mid-run.
    """
    rng = random.Random(seed)
    scheduler = Scheduler()
    reference = _ReferenceScheduler()
    fired = []
    cancellable = []  # (handle, ref_entry) pairs still live

    for round_no in range(40):
        for _ in range(rng.randint(20, 60)):
            delay = rng.choice([0.0, 0.5, 1.0, 1.0, 2.5, 10.0, 1e6])
            tag = (round_no, reference.seq)
            if rng.random() < 0.5:
                handle = scheduler.schedule(delay, fired.append, tag)
            else:
                target = scheduler.now + delay
                handle = scheduler.schedule_at(target, fired.append, tag)
            cancellable.append((handle, reference.schedule(delay, tag)))
        # Cancel a large fraction to force compaction episodes.
        rng.shuffle(cancellable)
        keep = rng.randint(0, len(cancellable) // 3)
        for handle, ref_entry in cancellable[keep:]:
            handle.cancel()
            ref_entry[3] = False
            if ref_entry in reference.events:
                reference.events.remove(ref_entry)
        del cancellable[keep:]
        until = scheduler.now + rng.choice([0.0, 0.7, 3.0, 20.0])
        expected = reference.run(until=until)
        fired.clear()
        scheduler.run(until=until)
        assert fired == expected, f"divergence in round {round_no}"
        assert scheduler.now == reference.now
        cancellable = [
            (handle, ref_entry)
            for handle, ref_entry in cancellable
            if ref_entry[3]
        ]

    # Drain: everything still queued fires in reference order.
    expected = reference.run()
    fired.clear()
    scheduler.run()
    assert fired == expected
    assert scheduler.now == reference.now
