"""Availability curves of the six configurations over p (Section 3.3 / 4).

The paper discusses availability throughout (stability of expected loads,
the p > 0.8 regime, HQC vs ARBITRARY crossovers).  This bench regenerates
read and write availability for every configuration over a sweep of p at a
fixed n, cross-checks the closed forms against exact enumeration for a
small system, and asserts:

* every configuration's availability is monotone in p;
* MOSTLY-READ reads / UNMODIFIED writes are near-perfect, their duals poor;
* HQC write availability beats ARBITRARY's for p < 0.8 at large n;
* for p > 0.8 ARBITRARY has read and write availability ~1 (stability).
"""

from __future__ import annotations

import pytest

from repro.analysis.formulas import evaluate_configuration
from repro.analysis.tables import format_table
from repro.core.builder import from_spec
from repro.core.config import Configuration
from repro.core.metrics import read_availability, write_availability
from repro.core.protocol import ArbitraryProtocol
from repro.quorums.availability import exact_availability

P_VALUES = (0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95)
N = 243


@pytest.fixture(scope="module")
def points():
    return {
        (config, p): evaluate_configuration(config, N, p)
        for config in Configuration
        for p in P_VALUES
    }


def test_availability_tables(points, emit, benchmark):
    benchmark(evaluate_configuration, Configuration.ARBITRARY, N, 0.7)
    for quantity in ("read_availability", "write_availability"):
        rows = []
        for p in P_VALUES:
            row = [p]
            for config in Configuration:
                row.append(round(getattr(points[(config, p)], quantity), 4))
            rows.append(row)
        emit(
            f"availability_{quantity.split('_')[0]}",
            format_table(
                ["p", *[str(c) for c in Configuration]],
                rows,
                title=f"{quantity} at n ~ {N}",
            ),
        )


def test_availability_monotone_in_p(points):
    for config in Configuration:
        for low, high in zip(P_VALUES, P_VALUES[1:]):
            assert (
                points[(config, high)].read_availability
                >= points[(config, low)].read_availability - 1e-12
            )
            assert (
                points[(config, high)].write_availability
                >= points[(config, low)].write_availability - 1e-12
            )


def test_extreme_configurations(points):
    for p in P_VALUES:
        mostly_read = points[(Configuration.MOSTLY_READ, p)]
        assert mostly_read.read_availability > 0.999999
        assert mostly_read.write_availability < p  # needs all n replicas
        unmodified = points[(Configuration.UNMODIFIED, p)]
        assert unmodified.write_availability > p   # paper: highly available
        assert unmodified.read_availability < p    # gated by the root


def test_hqc_write_availability_beats_arbitrary_below_08(points):
    for p in (0.55, 0.6, 0.65, 0.7):
        hqc = points[(Configuration.HQC, p)]
        arbitrary = points[(Configuration.ARBITRARY, p)]
        assert hqc.write_availability > arbitrary.write_availability


def test_arbitrary_stable_above_08(points):
    for p in (0.85, 0.9, 0.95):
        arbitrary = points[(Configuration.ARBITRARY, p)]
        assert arbitrary.read_availability > 0.97
        assert arbitrary.write_availability > 0.97


def test_closed_forms_match_exact_enumeration(benchmark):
    """The per-level availability products equal exact DNF probabilities."""
    tree = from_spec("1-3-5")
    protocol = ArbitraryProtocol(tree)
    reads = list(protocol.read_quorums())
    writes = protocol.write_quorums()

    def check(p: float) -> tuple[float, float]:
        return (
            exact_availability(reads, p, universe=protocol.universe),
            exact_availability(writes, p, universe=protocol.universe),
        )

    for p in (0.55, 0.7, 0.9):
        exact_read, exact_write = check(p)
        assert exact_read == pytest.approx(read_availability(tree, p), abs=1e-9)
        assert exact_write == pytest.approx(write_availability(tree, p), abs=1e-9)
    benchmark(check, 0.7)
