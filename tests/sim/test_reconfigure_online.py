"""Integration tests: epoch-based online reconfiguration under live traffic.

The unit-level reconfigurer tests live in ``test_reconfigure.py``; this
file exercises the whole stack — engine scheduling (``reshape_at``), the
dual-quorum transition epoch under a running workload, rollback on
mid-migration failure, chaos composition, and the fault-planned target.
"""

from repro.core.builder import from_spec, mostly_write
from repro.fault.invariants import InvariantChecker
from repro.fault.scenarios import OnlineReshape
from repro.runner.tasks import SimParams, build_sim_config
from repro.sim.engine import SimulationConfig, build_simulation, simulate
from repro.sim.reconfigure import ReconfigStatus, TreeReconfigurer
from repro.sim.workload import WorkloadSpec


def _workload(operations=400, keys=16):
    return WorkloadSpec(
        operations=operations, read_fraction=0.5, keys=keys,
        arrival="poisson", rate=0.25,
    )


def _online_config(**overrides):
    settings = dict(
        tree=from_spec("1-3-5"), workload=_workload(), seed=3, clients=2,
        check_invariants=True, reshape_at=120.0, reshape_spec="1-4-4",
    )
    settings.update(overrides)
    return SimulationConfig(**settings)


class TestOnlineTransition:
    def test_reads_served_throughout_the_transition(self):
        """The headline property: the epoch boundary is invisible to reads."""
        result = simulate(_online_config())
        outcome = result.reconfiguration
        assert outcome is not None and outcome.success
        assert outcome.mode == "online"
        assert outcome.epoch == 1
        assert not outcome.rolled_back
        availability = result.window_read_availability(
            outcome.started_at, outcome.finished_at
        )
        assert availability is not None and availability >= 0.95
        assert result.invariants is not None and result.invariants.ok

    def test_stop_the_world_starves_the_window(self):
        """The quiescent path defers every read past the window's end."""
        result = simulate(_online_config(reshape_online=False))
        outcome = result.reconfiguration
        assert outcome is not None and outcome.success
        assert outcome.mode == "quiescent"
        assert outcome.epoch == 0
        availability = result.window_read_availability(
            outcome.started_at, outcome.finished_at
        )
        assert availability == 0.0
        assert result.invariants is not None and result.invariants.ok
        # deferred operations are replayed, not dropped
        summary = result.summary()
        assert summary["read_availability"] == 1.0
        assert summary["write_availability"] == 1.0

    def test_epoch_bookkeeping_reaches_the_checker(self):
        """The checker sees both epoch edges and audits inside the window."""
        result = simulate(_online_config())
        checker = result.invariants
        outcome = result.reconfiguration
        assert checker is not None and outcome is not None
        states = [(epoch, state) for epoch, state, _at in checker.epoch_log]
        assert states == [(1, "transition"), (1, "stable")]
        edges = [at for _e, _s, at in checker.epoch_log]
        assert edges[0] >= outcome.started_at
        assert edges[1] <= outcome.finished_at
        assert checker.checked_by_state.get("transition", 0) > 0
        assert checker.checked_by_state.get("stable", 0) > 0

    def test_transition_with_leases_and_batching(self):
        """Epoch bumps revoke leases, so caches never leak across trees."""
        result = simulate(_online_config(batch_window=2.0, leases=True))
        outcome = result.reconfiguration
        assert outcome is not None and outcome.success
        assert result.invariants is not None and result.invariants.ok
        summary = result.summary()
        assert summary["read_availability"] == 1.0


class TestRollback:
    def test_failed_migration_rolls_back_to_the_old_tree(self):
        """A broken target write quorum aborts the epoch cleanly."""
        tree = from_spec("1-3-5")
        config = SimulationConfig(tree=tree, seed=0)
        scheduler, _workload_obj, _monitor, network, sites = (
            build_simulation(config)
        )
        coordinator = network.endpoint(-1)
        checker = InvariantChecker()
        reconfigurer = TreeReconfigurer(coordinator, invariants=checker)

        wrote = []
        coordinator.write("k", "old", wrote.append)
        while not wrote:
            assert scheduler.step(), "stalled"
        assert wrote[0].success

        # mostly_write(8) pairs replicas (0,1)(2,3)(4,5)(6,7): one crash per
        # pair breaks every NEW write quorum, hence every dual write quorum.
        for sid in (1, 2, 4, 6):
            sites[sid].crash()
        old_system = coordinator.system
        box = []
        reconfigurer.reconfigure_online(mostly_write(8), ["k"], box.append)
        while not box:
            assert scheduler.step(), "stalled"
        outcome = box[0]
        assert not outcome.success
        assert outcome.status is ReconfigStatus.WRITE_FAILED
        assert outcome.rolled_back
        assert outcome.epoch == 1
        assert coordinator.system is old_system
        assert checker.epoch_log[-1][1] == "stable"
        assert checker.ok

        # the old tree still serves the pre-migration value
        for sid in (1, 2, 4, 6):
            sites[sid].recover()
        read = []
        coordinator.read("k", read.append)
        while not read:
            assert scheduler.step(), "stalled"
        assert read[0].success and read[0].value == "old"


class TestChaosComposition:
    def test_reconfigure_during_partition_flapping(self):
        """The ISSUE's survivability case: flapping across the epoch."""
        params = SimParams(
            spec="1-3-5", operations=800, seed=5, max_attempts=4,
            detector=True, chaos="flapping", check_invariants=True,
            reshape_at=200.0,
        )
        config, _label = build_sim_config(params)
        result = simulate(config)
        outcome = result.reconfiguration
        checker = result.invariants
        assert outcome is not None and checker is not None
        # under chaos either the transition commits or it rolls back —
        # both are terminal and both must leave the invariants clean
        assert outcome.success or outcome.rolled_back
        assert checker.ok, checker.violations[:3]
        assert result.summary()["read_availability"] > 0.8

    def test_online_reshape_injector(self):
        """The fault-layer injector drives the same transition."""
        injector = OnlineReshape(spec="1-4-4", at=120.0, keys=8)
        config = SimulationConfig(
            tree=from_spec("1-3-5"), workload=_workload(operations=300),
            failures=injector, seed=3, check_invariants=True,
        )
        result = simulate(config)
        assert injector.outcomes and injector.outcomes[0].success
        assert injector.outcomes[0].mode == "online"
        assert result.invariants is not None and result.invariants.ok


class TestPlannedTarget:
    def test_reshape_without_spec_uses_the_advisor(self):
        """No ``reshape_spec``: the target comes from the tuning advisor."""
        result = simulate(_online_config(reshape_spec=None))
        outcome = result.reconfiguration
        assert outcome is not None and outcome.success
        # the planned shape is a real reshape of the same 8 replicas
        assert outcome.new_tree.n == 8
        assert outcome.new_tree.spec() != from_spec("1-3-5").spec()
