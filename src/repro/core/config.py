"""The six named configurations of Section 4.

1. **BINARY** — the original Agrawal-El Abbadi tree-quorum protocol on a
   complete binary tree (cost/availability from [2], load from [10]);
2. **UNMODIFIED** — the paper's read/write operations applied directly to
   that same all-physical binary tree;
3. **ARBITRARY** — the paper's protocol on an Algorithm-1 tree (logical
   root, sqrt(n) physical levels, 4-replica head levels);
4. **HQC** — Kumar's hierarchical quorum consensus (ternary hierarchy);
5. **MOSTLY-READ** — all replicas on one physical level (behaves as ROWA);
6. **MOSTLY-WRITE** — two replicas per physical level.

Configurations 2, 3, 5 and 6 are instances of the arbitrary protocol and
are modelled through :mod:`repro.core.metrics`; 1 and 4 are the baseline
protocols.  :func:`make_model` returns a uniform
:class:`~repro.protocols.base.ProtocolModel` for any of the six, and
:func:`make_tree` returns the underlying tree for the tree-shaped ones.

Each configuration has its own admissible system sizes (complete binary
trees need ``n = 2^(h+1)-1``, HQC needs ``n = 3^l``, Algorithm 1 wants
``n > 64``, MOSTLY-WRITE wants ``n >= 2``); :func:`admissible_size` snaps a
requested ``n`` to the nearest size the configuration supports, which is how
the figure sweeps place all six protocols on a common axis.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Iterator

from repro.core import builder
from repro.core import metrics
from repro.core.protocol import ArbitraryProtocol
from repro.core.tree import ArbitraryTree
from repro.protocols.base import ProtocolModel
from repro.protocols.hqc import HQCProtocol
from repro.protocols.tree_quorum import TreeQuorumProtocol


class Configuration(enum.Enum):
    """The six configurations compared in Section 4 of the paper."""

    BINARY = "BINARY"
    UNMODIFIED = "UNMODIFIED"
    ARBITRARY = "ARBITRARY"
    HQC = "HQC"
    MOSTLY_READ = "MOSTLY-READ"
    MOSTLY_WRITE = "MOSTLY-WRITE"

    def __str__(self) -> str:
        return self.value


class ArbitraryTreeModel(ProtocolModel):
    """Adapter exposing an arbitrary-protocol tree as a ProtocolModel.

    All quantities come from the closed forms of
    :mod:`repro.core.metrics`; quorum enumeration delegates to
    :class:`~repro.core.protocol.ArbitraryProtocol`.
    """

    def __init__(self, tree: ArbitraryTree, name: str = "ARBITRARY") -> None:
        super().__init__(tree.n)
        self.name = name
        self._tree = tree
        self._protocol = ArbitraryProtocol(tree)

    @property
    def tree(self) -> ArbitraryTree:
        """The underlying tree."""
        return self._tree

    @property
    def protocol(self) -> ArbitraryProtocol:
        """The operational protocol object (quorum selection etc.)."""
        return self._protocol

    def read_cost(self) -> float:
        """One replica per physical level."""
        return float(metrics.read_cost(self._tree))

    def write_cost(self) -> float:
        """Average over the uniform write strategy: ``n / |K_phy|``."""
        return metrics.write_cost_avg(self._tree)

    def read_availability(self, p: float) -> float:
        """Per-level product form of Section 3.2.1."""
        return metrics.read_availability(self._tree, p)

    def write_availability(self, p: float) -> float:
        """Complement of the all-levels-broken product of Section 3.2.2."""
        return metrics.write_availability(self._tree, p)

    def read_load(self) -> float:
        """``1/d`` (Appendix 6.1)."""
        return metrics.read_load(self._tree)

    def write_load(self) -> float:
        """``1/|K_phy|`` (Appendix 6.2)."""
        return metrics.write_load(self._tree)

    def read_quorums(self) -> Iterator[frozenset[int]]:
        """Delegates to the operational protocol."""
        return self._protocol.read_quorums()

    def write_quorums(self) -> Iterator[frozenset[int]]:
        """Delegates to the operational protocol."""
        return iter(self._protocol.write_quorums())


def _nearest_binary_size(n: int) -> int:
    """Closest ``2^(h+1) - 1`` to ``n`` (h >= 0)."""
    height = max(0, round(math.log2(n + 1)) - 1)
    candidates = [2 ** (h + 1) - 1 for h in (height, height + 1)]
    return min(candidates, key=lambda candidate: abs(candidate - n))


def _nearest_hqc_size(n: int) -> int:
    """Closest power of three to ``n``."""
    depth = max(0, round(math.log(max(n, 1), 3)))
    candidates = [3**d for d in (depth, depth + 1)]
    return min(candidates, key=lambda candidate: abs(candidate - n))


def admissible_size(config: Configuration, n: int) -> int:
    """Snap ``n`` to the nearest size the configuration supports."""
    if n < 1:
        raise ValueError("n must be positive")
    if config in (Configuration.BINARY, Configuration.UNMODIFIED):
        return _nearest_binary_size(n)
    if config is Configuration.HQC:
        return _nearest_hqc_size(n)
    if config is Configuration.MOSTLY_WRITE:
        return max(2, n)
    return n


def make_tree(config: Configuration, n: int) -> ArbitraryTree:
    """Build the tree behind a tree-shaped configuration.

    Supports UNMODIFIED, ARBITRARY, MOSTLY-READ and MOSTLY-WRITE; BINARY and
    HQC are quorum-recursion protocols without an arbitrary-protocol tree,
    so they raise :class:`ValueError`.
    """
    n = admissible_size(config, n)
    if config is Configuration.UNMODIFIED:
        return builder.unmodified_binary(n)
    if config is Configuration.ARBITRARY:
        return builder.recommended_tree(n)
    if config is Configuration.MOSTLY_READ:
        return builder.mostly_read(n)
    if config is Configuration.MOSTLY_WRITE:
        return builder.mostly_write(n)
    raise ValueError(f"{config} is not backed by an arbitrary-protocol tree")


def make_model(config: Configuration, n: int) -> ProtocolModel:
    """Build the analytic model of any of the six configurations.

    ``n`` is snapped to the nearest admissible size first (see
    :func:`admissible_size`); check ``model.n`` for the size actually used.
    """
    n = admissible_size(config, n)
    if config is Configuration.BINARY:
        return TreeQuorumProtocol(n)
    if config is Configuration.HQC:
        return HQCProtocol(n)
    tree = make_tree(config, n)
    return ArbitraryTreeModel(tree, name=str(config))


ALL_CONFIGURATIONS: tuple[Configuration, ...] = tuple(Configuration)
