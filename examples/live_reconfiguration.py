"""Shifting along the spectrum at runtime: live tree reconfiguration.

The paper's conclusion promises that adapting to a new read/write mix means
"just modifying the structure of the tree".  This example runs the full
story: a write-heavy phase on a MOSTLY-WRITE-style tree, a measured
migration to a read-optimised tree chosen by the tuning advisor, and a
read-heavy phase — with every value surviving the shape change and the
measured costs flipping exactly as the analysis predicts.

Run:  python examples/live_reconfiguration.py
"""

from __future__ import annotations

import random

from repro.core import analyse, from_spec, mostly_write
from repro.core.tuning import recommend
from repro.sim.coordinator import QuorumCoordinator
from repro.sim.engine import SimulationConfig, build_simulation
from repro.sim.reconfigure import TreeReconfigurer

N = 9
KEYS = [f"sensor{i}" for i in range(6)]


class Driver:
    """Blocking facade over the event-driven stack."""

    def __init__(self, tree):
        config = SimulationConfig(tree=tree, seed=7)
        (self.scheduler, _w, self.monitor,
         self.network, self.sites) = build_simulation(config)
        self.coordinator: QuorumCoordinator = self.network.endpoint(-1)
        self.reconfigurer = TreeReconfigurer(self.coordinator)

    def call(self, op):
        box = []
        op(box.append)
        while not box:
            self.scheduler.step()
        return box[0]


def run_phase(driver, rng, operations, read_fraction, audit):
    touched = 0
    for i in range(operations):
        key = rng.choice(KEYS)
        if rng.random() < read_fraction:
            outcome = driver.call(
                lambda cb, k=key: driver.coordinator.read(k, cb)
            )
            if outcome.success and key in audit:
                assert outcome.value == audit[key], "consistency violated!"
        else:
            value = f"reading-{i}"
            outcome = driver.call(
                lambda cb, k=key, v=value: driver.coordinator.write(k, v, cb)
            )
            if outcome.success:
                audit[key] = value
        touched += len(outcome.quorum)
    return touched / operations


def main() -> None:
    rng = random.Random(3)
    write_tree = mostly_write(N)
    driver = Driver(write_tree)
    audit: dict = {}

    print(f"phase 1 — ingest burst on {write_tree.spec()} "
          f"(write load {analyse(write_tree).write_load:.3f})")
    avg = run_phase(driver, rng, 200, read_fraction=0.1, audit=audit)
    print(f"  avg replicas touched per op: {avg:.2f}\n")

    advice = recommend(N, p=0.95, read_fraction=0.9)
    read_tree = advice.tree
    print(f"workload flips to 90% reads; the advisor picks {read_tree.spec()}")
    outcome = driver.call(
        lambda cb: driver.reconfigurer.reconfigure(read_tree, KEYS, cb)
    )
    print(f"  migration: {outcome.status.value}, "
          f"{outcome.keys_migrated}/{outcome.keys_total} keys, "
          f"{outcome.operations_used} quorum ops, "
          f"{outcome.duration:.0f} time units\n")
    assert outcome.success

    print(f"phase 2 — dashboard traffic on {read_tree.spec()} "
          f"(read cost {analyse(read_tree).read_cost})")
    avg = run_phase(driver, rng, 200, read_fraction=0.9, audit=audit)
    print(f"  avg replicas touched per op: {avg:.2f}\n")

    print("every read during both phases returned the latest committed")
    print("value — the state transfer re-wrote each key through the new")
    print("tree's quorums before the switch, so no configuration change")
    print("ever lost a write.")


if __name__ == "__main__":
    main()
