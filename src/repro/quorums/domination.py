"""Coterie domination (Garcia-Molina & Barbara [6]).

A coterie ``D`` *dominates* a coterie ``C`` (over the same universe) when
``D != C`` and every quorum of ``C`` contains some quorum of ``D`` — i.e.
``D`` is available whenever ``C`` is, and possibly more often, with no
larger quorums.  A coterie dominated by no other is *non-dominated* (ND);
only ND coteries are Pareto-optimal for availability.

The paper leans on this theory implicitly: minimising a quorum system
(dropping superset quorums) yields a dominating coterie, and Naor-Wool's
load results are stated for ND systems.  This module provides the checks,
a dominating-coterie search, and the classical transversal
characterisation: ``C`` is ND iff every set that intersects all quorums of
``C`` contains a quorum of ``C`` — which also powers
:func:`is_self_intersecting_complement` style diagnostics for small
universes.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable
from itertools import chain, combinations

from repro.quorums.base import Coterie, minimise


def dominates(
    dominator: Iterable[Collection[int]],
    dominated: Iterable[Collection[int]],
) -> bool:
    """True iff ``dominator`` dominates ``dominated`` (as coteries).

    Both arguments are quorum collections over the same universe.  The
    definition requires the two coteries to differ and every quorum of the
    dominated one to be a (non-strict) superset of some dominator quorum.
    """
    strong = tuple(frozenset(q) for q in dominator)
    weak = tuple(frozenset(q) for q in dominated)
    if set(strong) == set(weak):
        return False
    return all(any(s <= w for s in strong) for w in weak)


def _subsets(universe: tuple[int, ...]) -> Iterable[frozenset[int]]:
    return (
        frozenset(c)
        for c in chain.from_iterable(
            combinations(universe, size) for size in range(1, len(universe) + 1)
        )
    )


def is_non_dominated(
    quorums: Iterable[Collection[int]],
    universe: Collection[int],
) -> bool:
    """Exhaustively test non-domination (small universes only).

    Uses the transversal characterisation: ``C`` is ND iff every subset
    ``T`` of the universe that intersects all quorums of ``C`` contains a
    quorum of ``C``.  (If some transversal ``T`` contains no quorum, then
    ``minimise(C + {T})`` dominates ``C``.)  Exponential in ``|universe|``;
    guarded at 16 elements.
    """
    frozen = tuple(frozenset(q) for q in quorums)
    ground = tuple(sorted(frozenset(universe)))
    if len(ground) > 16:
        raise ValueError(
            f"non-domination check is exponential; universe of {len(ground)} "
            "exceeds the limit of 16"
        )
    for candidate in _subsets(ground):
        if all(candidate & quorum for quorum in frozen):
            if not any(quorum <= candidate for quorum in frozen):
                return False
    return True


def dominating_coterie(
    quorums: Iterable[Collection[int]],
    universe: Collection[int],
) -> Coterie:
    """A coterie that dominates (or equals) the given one and is ND.

    Repeatedly adjoins minimal transversals that contain no quorum, then
    minimises.  Terminates because each round strictly enlarges the set of
    subsets containing a quorum; exponential in ``|universe|`` (<= 16).
    """
    current = list(minimise(quorums))
    ground = tuple(sorted(frozenset(universe)))
    if len(ground) > 16:
        raise ValueError("universe too large (limit 16)")
    changed = True
    while changed:
        changed = False
        for candidate in _subsets(ground):
            if all(candidate & quorum for quorum in current) and not any(
                quorum <= candidate for quorum in current
            ):
                current = list(minimise([*current, candidate]))
                changed = True
                break
    return Coterie(current, universe=ground)
