"""Cross-protocol properties of the unified zoo.

Every protocol in :mod:`repro.protocols.zoo` must behave as a proper
read/write quorum system, whatever its internal structure: the enumerated
quorums must cross-intersect (Definition 2.3's bi-coterie property), and the
failure-aware selectors must only ever return live replicas.
"""

import random

import pytest

from repro.protocols.zoo import (
    PROTOCOL_NAMES,
    fpp_system,
    quorum_system,
    quorum_systems,
)
from repro.quorums.system import QuorumSystem

#: Sizes kept small enough that full enumeration stays cheap for every
#: protocol (quorum counts are exponential in tree height / grid side).
SIZES = (4, 7, 10)

CASES = [
    (name, n) for n in SIZES for name in PROTOCOL_NAMES
]


@pytest.fixture(scope="module")
def systems():
    cache: dict[tuple[str, int], QuorumSystem] = {}
    for name, n in CASES:
        cache[(name, n)] = quorum_system(name, n)
    return cache


class TestFactory:
    def test_zoo_covers_all_seven_protocols(self):
        zoo = quorum_systems(13)
        assert set(zoo) == set(PROTOCOL_NAMES)
        assert len(zoo) == 7
        for system in zoo.values():
            assert isinstance(system, QuorumSystem)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            quorum_system("paxos", 9)

    def test_name_lookup_case_insensitive(self):
        assert quorum_system("HQC", 9).name == "HQC"

    def test_sizes_snap_to_admissible(self):
        zoo = quorum_systems(10)
        assert zoo["hqc"].n == 9
        assert zoo["tree-quorum"].n == 7
        assert zoo["grid"].n == 9
        assert zoo["majority"].n % 2 == 1
        assert zoo["arbitrary"].n == 10

    def test_fpp_extra(self):
        system = fpp_system(10)
        assert system.n == 7  # 2^2 + 2 + 1


@pytest.mark.parametrize("name,n", CASES)
class TestBicoterieProperty:
    def test_read_write_quorums_cross_intersect(self, systems, name, n):
        system = systems[(name, n)]
        assert system.is_bicoterie()

    def test_every_quorum_within_universe(self, systems, name, n):
        system = systems[(name, n)]
        universe = system.universe
        for quorum in system.materialise("read"):
            assert quorum and quorum <= universe
        for quorum in system.materialise("write"):
            assert quorum and quorum <= universe


@pytest.mark.parametrize("name,n", CASES)
class TestFailureAwareSelection:
    def test_all_live_selection_succeeds(self, systems, name, n):
        system = systems[(name, n)]
        read = system.select_read_quorum(system.universe, random.Random(0))
        write = system.select_write_quorum(system.universe, random.Random(1))
        assert read is not None and write is not None
        assert read & write  # bi-coterie intersection, concretely

    def test_selected_members_are_live(self, systems, name, n):
        system = systems[(name, n)]
        rng = random.Random(hash((name, n)) & 0xFFFF)
        members = sorted(system.universe)
        for trial in range(8):
            dead = set(rng.sample(members, k=len(members) // 4))
            live = set(members) - dead
            read = system.select_read_quorum(live, random.Random(trial))
            write = system.select_write_quorum(live, random.Random(trial))
            if read is not None:
                assert read <= live, f"{name}: read quorum used dead replicas"
            if write is not None:
                assert write <= live, f"{name}: write quorum used dead replicas"

    def test_nothing_live_selects_nothing(self, systems, name, n):
        system = systems[(name, n)]
        assert system.select_read_quorum(set()) is None
        assert system.select_write_quorum(set()) is None

    def test_sampling_matches_selection_support(self, systems, name, n):
        system = systems[(name, n)]
        rng = random.Random(3)
        quorum = system.sample_read_quorum(rng)
        assert quorum <= system.universe and quorum
