"""Chaos scenario library: adversarial schedules compiled onto the
existing :class:`~repro.sim.failures.FailureInjector` / network machinery.

Each scenario is itself a :class:`FailureInjector`, so scenarios compose
with the stock injectors (Bernoulli snapshots, crash/repair churn,
partition windows) through :class:`~repro.sim.failures.CompositeFailures`
and plug into :class:`~repro.sim.engine.SimulationConfig` unchanged:

* :class:`FlakyLinkBursts` — periodic bursts during which a seeded
  subset of sites drops most of its messages (links flap, sites stay
  "up" — invisible to the perfect crash detector, food for the
  suspicion-based one);
* :class:`RollingRestarts` — sites crash and recover one after another
  at a fixed cadence, like a fleet-wide redeploy;
* :class:`StragglerSites` — per-site latency inflation: chosen sites
  answer, but slower than the quorum timeout, which poisons every
  quorum containing them;
* :class:`PartitionFlapping` — a partition that installs and heals on a
  duty cycle, the pathological version of Section 2.2's special failure
  case;
* :class:`MassCrash` — a seeded fraction of the fleet crashes at one
  instant and recovers on a stagger, the recovery-time benchmark
  scenario.

All randomness is drawn from constructor-seeded ``random.Random``
streams at install time, so a scenario's entire schedule is a pure
function of its parameters — two same-seed chaos runs are bit-identical.

:func:`chaos_injector` builds the named scenarios the CLI / runner /
benchmarks share, and :data:`CHAOS_SCENARIOS` lists their names.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.builder import from_spec
from repro.core.tuning import plan_reshape
from repro.sim.events import Scheduler
from repro.sim.failures import CompositeFailures, FailureInjector
from repro.sim.network import Network, PartitionSpec
from repro.sim.site import Site


class FlakyLinkBursts(FailureInjector):
    """Bursts of heavy per-site message loss on a rotating seeded subset.

    Every ``period`` time units a burst starts: ``count`` sites (drawn
    per burst from the seeded stream) drop incoming and outgoing
    messages with probability ``drop`` for ``duration`` time units, then
    the links settle again.
    """

    def __init__(
        self,
        drop: float = 0.6,
        count: int = 2,
        period: float = 80.0,
        duration: float = 20.0,
        start: float = 10.0,
        horizon: float = 1000.0,
        seed: int | None = 0,
    ) -> None:
        if not 0.0 < drop <= 1.0:
            raise ValueError("burst drop probability must be in (0, 1]")
        if count < 1:
            raise ValueError("need at least one flaky site per burst")
        if period <= 0 or duration <= 0 or duration > period:
            raise ValueError("need 0 < duration <= period")
        if horizon <= start:
            raise ValueError("horizon must come after start")
        self._drop = drop
        self._count = count
        self._period = period
        self._duration = duration
        self._start = start
        self._horizon = horizon
        self._rng = random.Random(seed)

    def install(
        self,
        scheduler: Scheduler,
        sites: Sequence[Site],
        network: Network,
    ) -> None:
        """Schedule every burst (and its settling) inside the horizon."""
        sids = sorted(site.sid for site in sites)
        count = min(self._count, len(sids))
        at = self._start
        while at < self._horizon:
            flaky = tuple(self._rng.sample(sids, count))

            def begin(chosen: tuple[int, ...] = flaky) -> None:
                for sid in chosen:
                    network.set_site_drop(sid, self._drop)

            def settle(chosen: tuple[int, ...] = flaky) -> None:
                for sid in chosen:
                    network.set_site_drop(sid, 0.0)

            scheduler.schedule_at(at, begin)
            scheduler.schedule_at(at + self._duration, settle)
            at += self._period


class RollingRestarts(FailureInjector):
    """Crash and recover sites one after another at a fixed cadence.

    Site ``k`` (in SID order) crashes at ``start + k * period`` and
    recovers ``downtime`` later; after the last site the schedule wraps
    around for ``cycles`` passes.  The deterministic fleet-redeploy
    pattern: never more than one site down at once (if
    ``downtime <= period``), but every site takes its turn.
    """

    def __init__(
        self,
        period: float = 40.0,
        downtime: float = 10.0,
        start: float = 20.0,
        cycles: int = 1,
    ) -> None:
        if period <= 0 or downtime <= 0:
            raise ValueError("period and downtime must be positive")
        if cycles < 1:
            raise ValueError("need at least one cycle")
        self._period = period
        self._downtime = downtime
        self._start = start
        self._cycles = cycles

    def install(
        self,
        scheduler: Scheduler,
        sites: Sequence[Site],
        network: Network,
    ) -> None:
        """Schedule every crash/recover pair of the rolling schedule."""
        ordered = sorted(sites, key=lambda site: site.sid)
        at = self._start
        for _ in range(self._cycles):
            for site in ordered:
                scheduler.schedule_at(at, site.crash)
                scheduler.schedule_at(at + self._downtime, site.recover)
                at += self._period


class StragglerSites(FailureInjector):
    """Inflate chosen sites' message latency by a constant factor.

    Stragglers stay up and answer every request — just too slowly.  A
    quorum containing one (with ``factor`` large enough relative to the
    coordinator timeout) times out even though every member is "live",
    which is exactly the failure mode a perfect crash detector cannot
    see and a suspicion-based one learns.
    """

    def __init__(
        self,
        factor: float = 20.0,
        count: int = 2,
        start: float = 0.0,
        duration: float | None = None,
        seed: int | None = 0,
        sids: Sequence[int] | None = None,
    ) -> None:
        if factor <= 1.0:
            raise ValueError("straggler factor must exceed 1")
        if count < 1:
            raise ValueError("need at least one straggler")
        if duration is not None and duration <= 0:
            raise ValueError("duration must be positive")
        self._factor = factor
        self._count = count
        self._start = start
        self._duration = duration
        self._rng = random.Random(seed)
        # Explicit sids pin the stragglers (benchmarks want them disjoint
        # from crash victims); None samples ``count`` from the seed.
        self._sids = tuple(sids) if sids is not None else None
        #: The SIDs chosen at install time (exposed for tests/benches).
        self.chosen: tuple[int, ...] = ()

    def install(
        self,
        scheduler: Scheduler,
        sites: Sequence[Site],
        network: Network,
    ) -> None:
        """Pick the stragglers and schedule the inflation window."""
        if self._sids is not None:
            self.chosen = self._sids
        else:
            sids = sorted(site.sid for site in sites)
            self.chosen = tuple(
                self._rng.sample(sids, min(self._count, len(sids)))
            )

        def slow_down() -> None:
            for sid in self.chosen:
                network.set_site_latency_factor(sid, self._factor)

        def recover() -> None:
            for sid in self.chosen:
                network.set_site_latency_factor(sid, 1.0)

        scheduler.schedule_at(self._start, slow_down)
        if self._duration is not None:
            scheduler.schedule_at(self._start + self._duration, recover)


class PartitionFlapping(FailureInjector):
    """A partition that installs and heals on a duty cycle.

    Each ``period``, the partition is installed for ``duty * period``
    then healed for the remainder, from ``start`` until ``end``.
    """

    def __init__(
        self,
        spec: PartitionSpec,
        period: float = 60.0,
        duty: float = 0.5,
        start: float = 30.0,
        end: float = 1000.0,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 < duty < 1.0:
            raise ValueError("duty must be in (0, 1)")
        if end <= start:
            raise ValueError("end must come after start")
        self._spec = spec
        self._period = period
        self._duty = duty
        self._start = start
        self._end = end

    def install(
        self,
        scheduler: Scheduler,
        sites: Sequence[Site],
        network: Network,
    ) -> None:
        """Schedule every install/heal flap inside the window."""
        at = self._start
        while at < self._end:
            scheduler.schedule_at(
                at, lambda: network.set_partition(self._spec)
            )
            scheduler.schedule_at(
                min(at + self._duty * self._period, self._end),
                network.heal_partition,
            )
            at += self._period


class MassCrash(FailureInjector):
    """Crash a seeded fraction of the fleet at one instant.

    Each victim recovers ``recover_after`` later, staggered by
    ``stagger`` per site — the scenario behind ``BENCH_fault.json``'s
    time-to-first-success measurement.
    """

    def __init__(
        self,
        at: float = 100.0,
        fraction: float = 0.5,
        recover_after: float | None = 200.0,
        stagger: float = 5.0,
        seed: int | None = 0,
        sids: Sequence[int] | None = None,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("crash fraction must be in (0, 1]")
        if recover_after is not None and recover_after <= 0:
            raise ValueError("recover_after must be positive")
        if stagger < 0:
            raise ValueError("stagger cannot be negative")
        self._at = at
        self._fraction = fraction
        self._recover_after = recover_after
        self._stagger = stagger
        self._rng = random.Random(seed)
        # Explicit sids pin the victims (benchmarks keep the read-critical
        # sites alive); None samples ``fraction`` of the fleet from the seed.
        self._sids = tuple(sids) if sids is not None else None
        #: The SIDs crashed at install time (exposed for tests/benches).
        self.victims: tuple[int, ...] = ()

    def install(
        self,
        scheduler: Scheduler,
        sites: Sequence[Site],
        network: Network,
    ) -> None:
        """Schedule the crash instant and the staggered recoveries."""
        ordered = sorted(sites, key=lambda site: site.sid)
        if self._sids is not None:
            by_sid = {site.sid: site for site in ordered}
            chosen = [by_sid[sid] for sid in self._sids]
        else:
            count = max(1, round(self._fraction * len(ordered)))
            chosen = self._rng.sample(ordered, count)
        self.victims = tuple(site.sid for site in chosen)

        def crash_all() -> None:
            for site in chosen:
                site.crash()

        scheduler.schedule_at(self._at, crash_all)
        if self._recover_after is None:
            return
        for index, site in enumerate(chosen):
            scheduler.schedule_at(
                self._at + self._recover_after + index * self._stagger,
                site.recover,
            )


class OnlineReshape(FailureInjector):
    """Reconfigure the tree *as a chaos event*, composable with the rest.

    At ``at``, the first registered coordinator pool starts an epoch-based
    online reconfiguration (or the stop-the-world baseline with
    ``online=False``) while whatever other injectors it is composed with
    keep flapping partitions, crashing sites or dropping messages.  The
    target comes from ``spec`` when given, else from
    :func:`repro.core.tuning.plan_reshape` over the driving coordinator's
    failure-detector evidence — the fault layer literally choosing the
    next tree.

    Deliberately **not** part of :data:`CHAOS_SCENARIOS` / ``"all"``:
    reconfiguration changes what a run measures, so it must be requested
    explicitly (``SimulationConfig.reshape_at`` or this injector), never
    smuggled into existing chaos suites.
    """

    def __init__(
        self,
        spec: str | None = None,
        at: float = 200.0,
        keys: int = 16,
        online: bool = True,
        read_fraction: float = 0.5,
    ) -> None:
        if at <= 0:
            raise ValueError("reshape time must be positive")
        if keys < 0:
            raise ValueError("key count cannot be negative")
        self._spec = spec
        self._at = at
        self._keys = keys
        self._online = online
        self._read_fraction = read_fraction
        #: Completed :class:`~repro.sim.reconfigure.ReconfigOutcome`\ s
        #: (exposed for tests/benches driving the scheduler themselves).
        self.outcomes: list = []

    def install(
        self,
        scheduler: Scheduler,
        sites: Sequence[Site],
        network: Network,
    ) -> None:
        """Schedule the reconfiguration launch (coordinators resolved then).

        Injectors are installed before any traffic runs but *after* the
        coordinators registered on the network, so the pool lookup at
        launch time always sees the full group.
        """
        from repro.sim.reconfigure import TreeReconfigurer

        def launch() -> None:
            coordinators = network.coordinators()
            if not coordinators:
                return
            driver = coordinators[0]
            if self._spec is not None:
                target = from_spec(self._spec)
            else:
                suspects = driver.suspects
                suspected = (
                    suspects.chronic(scheduler.now)
                    if suspects is not None
                    else frozenset()
                )
                target = plan_reshape(
                    len(driver.system_universe()),
                    suspected,
                    read_fraction=self._read_fraction,
                ).tree
            reconfigurer = TreeReconfigurer(driver)
            keys = [f"k{index}" for index in range(self._keys)]
            if self._online:
                reconfigurer.reconfigure_online(
                    target, keys, self.outcomes.append
                )
            else:
                reconfigurer.reconfigure(
                    target, keys, self.outcomes.append, wait=True
                )

        scheduler.schedule_at(self._at, launch)


#: The scenario names :func:`chaos_injector` understands ("all" composes
#: every one of them).
CHAOS_SCENARIOS: tuple[str, ...] = (
    "flaky",
    "rolling",
    "stragglers",
    "flapping",
    "mass-crash",
)


def _half_partition(n: int) -> PartitionSpec:
    """Split replicas in half, keeping coordinators with the larger side.

    Coordinator SIDs are negative; parking a generous range of them in
    the majority component keeps clients able to reach a (potential)
    quorum during flaps instead of being isolated from everyone.
    """
    half = n // 2
    minority = set(range(half))
    majority = set(range(half, n)) | {-sid for sid in range(1, 33)}
    return PartitionSpec.split(minority, majority)


def chaos_injector(
    scenario: str,
    n: int,
    seed: int = 0,
    horizon: float = 1000.0,
) -> FailureInjector:
    """Build a named chaos scenario for an ``n``-replica fleet.

    ``"all"`` composes every scenario in :data:`CHAOS_SCENARIOS` with
    per-scenario child seeds derived from ``seed``.
    """
    if scenario == "all":
        derive = random.Random(seed)
        return CompositeFailures([
            chaos_injector(name, n, seed=derive.getrandbits(64), horizon=horizon)
            for name in CHAOS_SCENARIOS
        ])
    if scenario == "flaky":
        return FlakyLinkBursts(
            drop=0.6, count=max(1, n // 6), period=80.0, duration=20.0,
            start=10.0, horizon=horizon, seed=seed,
        )
    if scenario == "rolling":
        return RollingRestarts(period=40.0, downtime=10.0, start=20.0)
    if scenario == "stragglers":
        return StragglerSites(
            factor=20.0, count=max(1, n // 5), start=0.0,
            duration=horizon / 2, seed=seed,
        )
    if scenario == "flapping":
        return PartitionFlapping(
            _half_partition(n), period=60.0, duty=0.4, start=30.0,
            end=horizon,
        )
    if scenario == "mass-crash":
        return MassCrash(
            at=horizon / 10, fraction=0.5, recover_after=horizon / 4,
            stagger=5.0, seed=seed,
        )
    raise ValueError(
        f"unknown chaos scenario {scenario!r}; "
        f"choose from {CHAOS_SCENARIOS + ('all',)}"
    )
