"""Unit tests for the per-shard coordinator load balancer."""

import pytest

from repro.shard.balancer import BALANCER_POLICIES, LoadBalancer


def _pools():
    # Coordinators are opaque to the balancer; sentinels suffice.
    return [["a0", "a1", "a2"], ["b0", "b1"]]


class TestConstruction:
    def test_rejects_empty_pools(self):
        with pytest.raises(ValueError):
            LoadBalancer([])

    def test_rejects_empty_shard_pool(self):
        with pytest.raises(ValueError):
            LoadBalancer([["a0"], []])

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            LoadBalancer(_pools(), policy="random")

    @pytest.mark.parametrize("policy", BALANCER_POLICIES)
    def test_known_policies_build(self, policy):
        balancer = LoadBalancer(_pools(), policy=policy)
        assert balancer.policy == policy
        assert balancer.shards == 2


class TestRoundRobin:
    def test_cycles_through_pool(self):
        balancer = LoadBalancer(_pools(), policy="round-robin")
        picks = [balancer.pick(0)[1] for _ in range(7)]
        assert picks == ["a0", "a1", "a2", "a0", "a1", "a2", "a0"]

    def test_shards_have_independent_cursors(self):
        balancer = LoadBalancer(_pools(), policy="round-robin")
        balancer.pick(0)
        balancer.pick(0)
        assert balancer.pick(1)[1] == "b0"

    def test_dispatched_counts(self):
        balancer = LoadBalancer(_pools(), policy="round-robin")
        for _ in range(5):
            balancer.pick(0)
        balancer.pick(1)
        assert balancer.dispatched == [5, 1]


class TestLeastOutstanding:
    def test_prefers_idle_slot(self):
        balancer = LoadBalancer(_pools(), policy="least-outstanding")
        slot0, first = balancer.pick(0)
        assert (slot0, first) == (0, "a0")
        # a0 busy -> next two picks fill a1, a2; then ties break low-index.
        assert balancer.pick(0)[1] == "a1"
        assert balancer.pick(0)[1] == "a2"
        assert balancer.pick(0)[1] == "a0"

    def test_release_reopens_slot(self):
        balancer = LoadBalancer(_pools(), policy="least-outstanding")
        slot, _ = balancer.pick(0)
        balancer.pick(0)
        balancer.release(0, slot)
        assert balancer.pick(0) == (0, "a0")

    def test_outstanding_tracks_in_flight(self):
        balancer = LoadBalancer(_pools(), policy="least-outstanding")
        balancer.pick(0)
        balancer.pick(0)
        balancer.release(0, 0)
        assert balancer.outstanding(0) == (0, 1, 0)

    def test_unmatched_release_rejected(self):
        balancer = LoadBalancer(_pools(), policy="least-outstanding")
        with pytest.raises(ValueError):
            balancer.release(0, 0)
