"""Progress reporting for parallel runs.

The pool reports ``(done, total)`` after every completed task;
:class:`ProgressPrinter` renders that as an in-place tick line on stderr so
long sweeps stay observable without polluting stdout (whose tables are the
actual CLI output).
"""

from __future__ import annotations

import sys
from typing import TextIO


def null_progress(done: int, total: int) -> None:
    """A no-op progress callback."""


class ProgressPrinter:
    """Render ``k/total`` completion ticks in place on a terminal stream."""

    def __init__(self, label: str, stream: TextIO | None = None) -> None:
        self._label = label
        self._stream = stream if stream is not None else sys.stderr
        self._finished = False

    def __call__(self, done: int, total: int) -> None:
        if self._finished:
            return
        self._stream.write(f"\r{self._label}: {done}/{total} tasks")
        if done >= total:
            self._stream.write("\n")
            self._finished = True
        self._stream.flush()
