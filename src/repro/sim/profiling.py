"""Profiling harness for the simulator's inner ring (``repro profile``).

Two complementary views of where a simulation run spends its time:

* **wall-clock profile** — the run under :mod:`cProfile`, reported as
  the top functions by own-time.  This is the view that drives the
  inner-ring optimisation work (DESIGN.md §2.15): it attributes *host*
  time, so scheduler pops, message construction and delivery dominate.
* **phase attribution** — a second, *traced* run of the same
  configuration, folded into the observability layer's per-phase
  latency breakdown.  This attributes *simulated* time to protocol
  phases (read quorum, version round, prepare, decision), the view that
  drives protocol-level tuning.

The two views deliberately come from separate runs: tracing swaps the
zero-cost :class:`~repro.obs.recorder.NullRecorder` guards for a live
recorder, which perturbs exactly the hot paths the wall-clock profile
is meant to measure.  The untraced run is profiled; the traced run is
only used for phase attribution (its RNG stream is identical — tracing
never draws randomness — so both runs execute the same simulation).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass, replace

from repro.sim.engine import SimulationConfig, SimulationResult, simulate


@dataclass(frozen=True)
class ProfileReport:
    """Everything ``repro profile`` prints, as data."""

    result: SimulationResult
    #: ``pstats`` top-function table (strip_dirs, sorted, truncated).
    hotspots: str
    #: Host seconds for the profiled (untraced) run, profiler overhead
    #: included.
    wall_seconds: float
    #: Simulated events executed per host second in the profiled run.
    events_per_sec: float
    #: Completed operations per host second in the profiled run.
    ops_per_sec: float
    #: Rendered per-phase latency breakdown (None when skipped).
    phase_breakdown: str | None


def profile_simulation(
    config: SimulationConfig,
    sort: str = "tottime",
    limit: int = 25,
    phases: bool = True,
) -> ProfileReport:
    """Run ``config`` under cProfile; optionally attribute phases.

    ``sort`` is any :mod:`pstats` sort key (``tottime`` shows the inner
    ring, ``cumtime`` the call tree).  ``limit`` rows are printed.
    """
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    result = simulate(config)
    profiler.disable()
    wall = time.perf_counter() - started

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(sort).print_stats(limit)

    summary = result.summary()
    operations = summary["reads"] + summary["writes"]

    breakdown: str | None = None
    if phases:
        from repro.obs import phase_breakdown, render_phase_breakdown

        traced = simulate(replace(config, trace=True))
        breakdown = render_phase_breakdown(
            phase_breakdown(traced.recorder.finished_spans())
        )

    return ProfileReport(
        result=result,
        hotspots=stream.getvalue(),
        wall_seconds=wall,
        events_per_sec=result.events_processed / wall if wall else 0.0,
        ops_per_sec=operations / wall if wall else 0.0,
        phase_breakdown=breakdown,
    )
