"""End-to-end tests: the fault layer wired through the full simulator.

Covers the determinism contract (same seed → bit-identical summaries,
serial ≡ parallel), the detector actually steering quorum selection, the
invariant auditor riding along on chaos runs, and the
``_defer_unavailable`` finished-context regression.
"""

from dataclasses import replace

import pytest

from repro.core.tree import ArbitraryTree
from repro.fault.invariants import InvariantChecker, InvariantViolation
from repro.fault.retry import RetryPolicySpec
from repro.runner.merge import merge_monitors
from repro.runner.tasks import SimParams, build_sim_config, parallel_simulations
from repro.sim.coordinator import OperationOutcome, _OpContext
from repro.sim.engine import SimulationConfig, build_simulation, simulate
from repro.sim.replica import Timestamp
from repro.sim.workload import WorkloadSpec

BACKOFF = RetryPolicySpec(kind="exponential", base=0.5, jitter=0.4)

CHAOS_PARAMS = SimParams(
    spec="1-3-5",
    operations=200,
    max_attempts=4,
    chaos="all",
    detector=True,
    retry_policy=BACKOFF,
    check_invariants=True,
)


def chaos_config(**overrides):
    base = dict(
        tree=ArbitraryTree.from_level_counts([1, 3, 5]),
        workload=WorkloadSpec(operations=200, arrival="poisson", rate=0.25),
        max_attempts=4,
        timeout=8.0,
        retry_policy=BACKOFF,
        detector=True,
        check_invariants=True,
    )
    base.update(overrides)
    config = SimulationConfig(**base)
    from repro.fault.scenarios import chaos_injector

    return replace(
        config,
        failures=chaos_injector("all", config.tree.n, seed=config.seed),
    )


class TestDeterminism:
    def test_same_seed_chaos_runs_are_bit_identical(self):
        a = simulate(chaos_config(seed=7))
        b = simulate(chaos_config(seed=7))
        assert a.monitor.summary() == b.monitor.summary()
        assert a.summary() == b.summary()
        assert a.suspects.counters() == b.suspects.counters()

    def test_different_seeds_diverge(self):
        a = simulate(chaos_config(seed=7))
        b = simulate(chaos_config(seed=8))
        assert a.monitor.summary() != b.monitor.summary()

    def test_backoff_jitter_is_reproducible(self):
        # Configs are single-use (injector RNG streams are consumed at
        # install), so reproducibility means: same parameters → same run.
        assert (
            simulate(chaos_config(seed=3)).monitor.summary()
            == simulate(chaos_config(seed=3)).monitor.summary()
        )

    def test_serial_matches_parallel_under_chaos(self):
        serial = merge_monitors(
            parallel_simulations(CHAOS_PARAMS, 4, jobs=1)
        )
        parallel = merge_monitors(
            parallel_simulations(CHAOS_PARAMS, 4, jobs=2)
        )
        assert serial.summary() == parallel.summary()

    def test_fault_fields_off_preserve_legacy_streams(self):
        # A config with every fault knob at its default must replay the
        # exact pre-fault-layer RNG streams.
        legacy = SimParams(operations=150, p=0.9, max_attempts=2, seed=5)
        config, _ = build_sim_config(legacy)
        assert config.retry_policy is None
        rerun, _ = build_sim_config(legacy)
        assert simulate(config).monitor.summary() == simulate(
            rerun
        ).monitor.summary()


class TestDetectorIntegration:
    def test_stragglers_feed_the_detector(self):
        params = SimParams(
            operations=300, max_attempts=4, chaos="stragglers",
            detector=True, seed=1,
        )
        config, _ = build_sim_config(params)
        result = simulate(config)
        counters = result.suspects.counters()
        assert counters["suspicions_total"] > 0
        assert counters["selection_avoided"] > 0

    def test_detector_off_leaves_no_suspect_list(self):
        result = simulate(chaos_config(seed=2, detector=False))
        assert result.suspects is None


class TestInvariantIntegration:
    def test_chaos_run_passes_the_auditor(self):
        result = simulate(chaos_config(seed=11))
        assert result.invariants is not None
        assert result.invariants.ok
        assert result.invariants.checked > 0

    def test_corrupted_quorum_is_caught(self):
        # Splice the auditor in front of a healthy run's sink, then feed
        # it a forged outcome whose read quorum misses every write quorum.
        checker = InvariantChecker()
        audit = checker.wrap(lambda outcome: None)
        audit(OperationOutcome(
            op_type="write", key="k", success=True, value="v1",
            timestamp=Timestamp(version=1, sid=0),
            quorum=frozenset({0, 1, 2}),
        ))
        with pytest.raises(InvariantViolation):
            audit(OperationOutcome(
                op_type="read", key="k", success=True, value="v0",
                timestamp=Timestamp(version=1, sid=0),
                quorum=frozenset({97, 98}),
            ))


class TestDeferFinishedRegression:
    def test_defer_on_finished_context_is_a_no_op(self):
        config = SimulationConfig(
            tree=ArbitraryTree.from_level_counts([1, 3, 5]),
            workload=WorkloadSpec(operations=1),
        )
        scheduler, workload, monitor, network, sites = build_simulation(config)
        coordinator = workload.coordinators[0]
        ctx = _OpContext(
            op_type="read", key="k", on_done=lambda outcome: None,
            lock_token=0, started_at=0.0, finished=True,
        )
        before = scheduler.pending_events
        coordinator._defer_unavailable(ctx)
        assert scheduler.pending_events == before  # nothing scheduled

    def test_traced_chaos_run_leaves_no_open_spans(self):
        result = simulate(chaos_config(seed=4, trace=True))
        recorder = result.monitor.recorder
        assert recorder.open_spans() == []
        # every non-root span must hang off a recorded parent
        for span in recorder.spans.values():
            if span.parent_id:
                assert span.parent_id in recorder.spans
