"""Failure injection: crashes, repairs and partitions (Section 2.2).

Three injectors cover the paper's failure model:

* :class:`BernoulliFailures` — every site is independently down with
  probability ``q = 1 - p`` for the whole run.  This is exactly the
  availability model of the analysis (a static snapshot), so measured
  success rates converge to the closed-form availabilities;
* :class:`CrashRepairProcess` — sites alternate between up and down periods
  with exponential durations (transient, detectable failures);
* :class:`PartitionSchedule` — installs a network partition during a time
  window (the special failure case of Section 2.2 where only sites in the
  same partition communicate).

Injectors expose ``install(scheduler, sites, network)``; the engine calls
this before the workload starts.
"""

from __future__ import annotations

import abc
import random
from collections.abc import Mapping, Sequence

from repro.sim.events import Scheduler
from repro.sim.network import Network, PartitionSpec
from repro.sim.site import Site


class FailureInjector(abc.ABC):
    """Base class: something that schedules failures into a simulation."""

    @abc.abstractmethod
    def install(
        self,
        scheduler: Scheduler,
        sites: Sequence[Site],
        network: Network,
    ) -> None:
        """Schedule this injector's failure events."""


class NoFailures(FailureInjector):
    """The failure-free baseline."""

    def install(
        self,
        scheduler: Scheduler,
        sites: Sequence[Site],
        network: Network,
    ) -> None:
        """Nothing to schedule."""


class BernoulliFailures(FailureInjector):
    """Independent per-site crash with probability ``q = 1 - p`` at t=0.

    Matches the analysis assumption that each replica is available with
    probability ``p`` independently: one draw per site, held for the whole
    run.  Use many short runs (or one run with many operations and
    ``resample_every``) to estimate availability.

    ``p`` may also be a mapping from SID to probability for heterogeneous
    fleets (the generalised product forms in :mod:`repro.core.metrics`
    accept the same mapping).
    """

    def __init__(
        self,
        p: float | Mapping[int, float],
        seed: int | None = 0,
        resample_every: float | None = None,
    ) -> None:
        probabilities = (
            list(p.values()) if isinstance(p, Mapping) else [p]
        )
        for value in probabilities:
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"p must be in [0, 1], got {value}")
        self._p = p
        self._rng = random.Random(seed)
        self._resample_every = resample_every

    def _probability(self, sid: int) -> float:
        if isinstance(self._p, Mapping):
            return self._p[sid]
        return self._p

    def install(
        self,
        scheduler: Scheduler,
        sites: Sequence[Site],
        network: Network,
    ) -> None:
        """Crash the unlucky sites now; optionally redraw periodically."""
        if isinstance(self._p, Mapping):
            # Validate up front instead of dying with a bare KeyError on the
            # first draw (or — for an empty mapping against no sites —
            # passing vacuously): a heterogeneous p must cover the fleet.
            missing = [site.sid for site in sites if site.sid not in self._p]
            if missing:
                raise ValueError(
                    "BernoulliFailures p mapping must cover every site; "
                    f"missing SIDs {missing}"
                )
        self._apply(sites)
        if self._resample_every is not None:
            self._schedule_resample(scheduler, sites)

    def _apply(self, sites: Sequence[Site]) -> None:
        for site in sites:
            if self._rng.random() < self._probability(site.sid):
                site.recover()
            else:
                site.crash()

    def _schedule_resample(
        self, scheduler: Scheduler, sites: Sequence[Site]
    ) -> None:
        def resample() -> None:
            self._apply(sites)
            self._schedule_resample(scheduler, sites)

        assert self._resample_every is not None
        scheduler.schedule(self._resample_every, resample)


class CrashRepairProcess(FailureInjector):
    """Alternating exponential up/down periods per site.

    ``mean_uptime`` and ``mean_downtime`` give a long-run per-site
    availability of ``mean_uptime / (mean_uptime + mean_downtime)``, which is
    the natural dynamic analogue of the paper's ``p``.
    """

    def __init__(
        self,
        mean_uptime: float,
        mean_downtime: float,
        seed: int | None = 0,
        horizon: float | None = None,
    ) -> None:
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise ValueError("mean up/down times must be positive")
        self._mean_uptime = mean_uptime
        self._mean_downtime = mean_downtime
        self._rng = random.Random(seed)
        self._horizon = horizon

    @property
    def long_run_availability(self) -> float:
        """The stationary probability a site is up."""
        return self._mean_uptime / (self._mean_uptime + self._mean_downtime)

    def install(
        self,
        scheduler: Scheduler,
        sites: Sequence[Site],
        network: Network,
    ) -> None:
        """Schedule the first crash of every site."""
        for site in sites:
            self._schedule_crash(scheduler, site)

    def _within_horizon(self, scheduler: Scheduler, delay: float) -> bool:
        return self._horizon is None or scheduler.now + delay <= self._horizon

    def _schedule_crash(self, scheduler: Scheduler, site: Site) -> None:
        delay = self._rng.expovariate(1.0 / self._mean_uptime)
        if not self._within_horizon(scheduler, delay):
            return

        def crash() -> None:
            site.crash()
            self._schedule_recovery(scheduler, site)

        scheduler.schedule(delay, crash)

    def _schedule_recovery(self, scheduler: Scheduler, site: Site) -> None:
        delay = self._rng.expovariate(1.0 / self._mean_downtime)
        # Recoveries are NOT horizon-gated: the horizon stops new *crashes*
        # (the next crash gates itself in _schedule_crash), but every crash
        # must still pair with its repair (transient failures, Section 2.2).
        # Gating recoveries here used to leave any site whose repair fell
        # past the horizon crashed forever, silently depressing measured
        # availability on long tails.

        def recover() -> None:
            site.recover()
            self._schedule_crash(scheduler, site)

        scheduler.schedule(delay, recover)


class PartitionSchedule(FailureInjector):
    """Install a partition over ``[start, end)`` and heal it afterwards."""

    def __init__(
        self, spec: PartitionSpec, start: float, end: float
    ) -> None:
        if not 0 <= start < end:
            raise ValueError(f"invalid partition window [{start}, {end})")
        self._spec = spec
        self._start = start
        self._end = end

    def install(
        self,
        scheduler: Scheduler,
        sites: Sequence[Site],
        network: Network,
    ) -> None:
        """Schedule the split and the heal."""
        scheduler.schedule_at(self._start, lambda: network.set_partition(self._spec))
        scheduler.schedule_at(self._end, network.heal_partition)


class CompositeFailures(FailureInjector):
    """Apply several injectors together (e.g. crashes plus a partition)."""

    def __init__(self, injectors: Sequence[FailureInjector]) -> None:
        self._injectors = tuple(injectors)

    def install(
        self,
        scheduler: Scheduler,
        sites: Sequence[Site],
        network: Network,
    ) -> None:
        """Install every child injector."""
        for injector in self._injectors:
            injector.install(scheduler, sites, network)
