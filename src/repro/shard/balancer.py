"""Client-traffic load balancing across per-shard coordinator pools.

Every shard runs one or more coordinators (the shard's front-ends); the
:class:`LoadBalancer` decides which one serves each routed operation.  Two
deterministic policies:

* ``"round-robin"`` — a per-shard cursor; perfectly fair under any
  arrival pattern and completely stateless about operation lifetimes;
* ``"least-outstanding"`` — pick the coordinator with the fewest
  in-flight operations (lowest slot index breaks ties), which adapts to
  slow coordinators under open-loop arrivals.  The sharded store releases
  the slot when the operation's outcome lands.

Both policies are pure functions of the dispatch/release history, so a
sharded simulation stays bit-for-bit reproducible.
"""

from __future__ import annotations

from collections.abc import Sequence

#: Balancing policies the factory (and the CLI) accepts.
BALANCER_POLICIES: tuple[str, ...] = ("round-robin", "least-outstanding")


class LoadBalancer:
    """Spreads operations over each shard's coordinator pool."""

    def __init__(
        self,
        pools: Sequence[Sequence],
        policy: str = "round-robin",
    ) -> None:
        if not pools:
            raise ValueError("need at least one shard pool")
        if any(not pool for pool in pools):
            raise ValueError("every shard needs at least one coordinator")
        if policy not in BALANCER_POLICIES:
            raise ValueError(
                f"unknown balancing policy {policy!r}; "
                f"choose from {BALANCER_POLICIES}"
            )
        self._pools = [tuple(pool) for pool in pools]
        self._policy = policy
        self._cursors = [0] * len(self._pools)
        self._outstanding = [[0] * len(pool) for pool in self._pools]
        #: Operations dispatched per shard (the router's observed split).
        self.dispatched = [0] * len(self._pools)

    @property
    def policy(self) -> str:
        """The active balancing policy."""
        return self._policy

    @property
    def shards(self) -> int:
        """Number of shard pools."""
        return len(self._pools)

    def outstanding(self, shard: int) -> tuple[int, ...]:
        """In-flight operation counts per coordinator slot of ``shard``."""
        return tuple(self._outstanding[shard])

    def pick(self, shard: int) -> tuple[int, object]:
        """Choose ``(slot, coordinator)`` for one operation on ``shard``.

        The caller must pair every pick with a :meth:`release` of the
        returned slot when the operation completes (round-robin ignores
        the bookkeeping but the contract keeps policies swappable).
        """
        pool = self._pools[shard]
        outstanding = self._outstanding[shard]
        if self._policy == "round-robin":
            slot = self._cursors[shard]
            self._cursors[shard] = (slot + 1) % len(pool)
        else:
            slot = min(range(len(pool)), key=outstanding.__getitem__)
        outstanding[slot] += 1
        self.dispatched[shard] += 1
        return slot, pool[slot]

    def release(self, shard: int, slot: int) -> None:
        """Mark one of ``shard``'s operations on ``slot`` as finished."""
        outstanding = self._outstanding[shard]
        if outstanding[slot] <= 0:
            raise ValueError(
                f"release without a matching pick (shard {shard}, slot {slot})"
            )
        outstanding[slot] -= 1
