"""End-to-end simulator validation against the closed forms.

Runs the full discrete-event stack (sites, network, locks, 2PC, workload)
over the paper's 1-3-5 example and an Algorithm-1-style tree and checks
that the *measured* quantities land on the analytical predictions:

* failure-free: measured read/write cost and per-replica load match
  ``RD_cost``, ``WR_cost``, ``L_RD``, ``L_WR``;
* Bernoulli failures, single-attempt operations, open-loop arrivals:
  measured success rates match ``RD_availability(p)`` / ``WR_availability(p)``.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core import analyse, from_spec, sqrt_levels
from repro.sim import BernoulliFailures, SimulationConfig, WorkloadSpec, simulate

P = 0.7


@pytest.fixture(scope="module")
def failure_free():
    tree = from_spec("1-3-5")
    config = SimulationConfig(
        tree=tree,
        workload=WorkloadSpec(operations=4000, read_fraction=0.5, keys=16),
        seed=11,
    )
    return tree, simulate(config)


@pytest.fixture(scope="module")
def with_failures():
    tree = from_spec("1-3-5")
    config = SimulationConfig(
        tree=tree,
        workload=WorkloadSpec(
            operations=8000, read_fraction=0.5, keys=64,
            arrival="poisson", rate=0.25,
        ),
        failures=BernoulliFailures(p=P, seed=7, resample_every=40.0),
        max_attempts=1,
        timeout=8.0,
        seed=1,
    )
    return tree, simulate(config)


def test_failure_free_costs_and_loads(failure_free, emit, benchmark):
    tree, result = failure_free
    metrics = analyse(tree, p=1.0)
    summary = result.summary()
    rows = [
        ["read cost", round(summary["read_cost"], 3), metrics.read_cost],
        ["write cost", round(summary["write_cost"], 3),
         round(metrics.write_cost_avg, 3)],
        ["read load", round(summary["read_load"], 3),
         round(metrics.read_load, 3)],
        ["write load", round(summary["write_load"], 3),
         round(metrics.write_load, 3)],
    ]
    emit(
        "sim_failure_free",
        format_table(
            ["quantity", "simulated", "closed form"],
            rows,
            title="Simulator vs analysis, failure-free 1-3-5 tree",
        ),
    )
    assert summary["read_availability"] == 1.0
    assert summary["write_availability"] == 1.0
    assert summary["read_cost"] == pytest.approx(metrics.read_cost, rel=0.01)
    assert summary["write_cost"] == pytest.approx(metrics.write_cost_avg, rel=0.05)
    # measured max per-replica load converges to the optimal strategy load
    assert summary["read_load"] == pytest.approx(metrics.read_load, rel=0.12)
    assert summary["write_load"] == pytest.approx(metrics.write_load, rel=0.12)
    benchmark(lambda: analyse(tree, p=1.0))


def test_measured_availability_matches_formulas(with_failures, emit, benchmark):
    tree, result = with_failures
    metrics = analyse(tree, p=P)
    summary = result.summary()
    emit(
        "sim_availability",
        format_table(
            ["quantity", "simulated", "closed form"],
            [
                ["read availability", round(summary["read_availability"], 3),
                 round(metrics.read_availability, 3)],
                ["write availability", round(summary["write_availability"], 3),
                 round(metrics.write_availability, 3)],
            ],
            title=f"Simulator vs analysis under Bernoulli failures (p = {P})",
        ),
    )
    assert summary["read_availability"] == pytest.approx(
        metrics.read_availability, abs=0.03
    )
    assert summary["write_availability"] == pytest.approx(
        metrics.write_availability, abs=0.05
    )
    benchmark(lambda: analyse(tree, p=P))


def test_simulation_throughput(benchmark):
    """Time a complete mid-size simulation (the harness's own speed)."""
    tree = sqrt_levels(36)

    def run():
        config = SimulationConfig(
            tree=tree,
            workload=WorkloadSpec(operations=300, read_fraction=0.5, keys=8),
            seed=3,
        )
        return simulate(config).monitor.total_operations

    assert benchmark(run) == 300


def test_one_copy_equivalence_under_failures(benchmark):
    """Every successful read returns the latest successfully written value."""
    tree = from_spec("1-3-5")
    config = SimulationConfig(
        tree=tree,
        workload=WorkloadSpec(operations=1500, read_fraction=0.5, keys=4),
        failures=BernoulliFailures(p=0.8, seed=3, resample_every=60.0),
        max_attempts=3,
        timeout=8.0,
        seed=5,
    )

    def run():
        result = simulate(config)
        last_written: dict = {}
        violations = 0
        for outcome in result.monitor.outcomes:
            if not outcome.success:
                continue
            if outcome.op_type == "write":
                last_written[outcome.key] = outcome.value
            else:
                expected = last_written.get(outcome.key)
                if expected is not None and outcome.value != expected:
                    violations += 1
        return violations

    assert benchmark(run) == 0
