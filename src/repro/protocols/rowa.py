"""Read-One/Write-All (ROWA) — Bernstein & Goodman [3].

A read contacts any single replica; a write contacts all ``n`` replicas.
The paper's intro quotes the resulting trade-off: read cost 1 and read load
``1/n`` with excellent read availability, against write cost ``n``, write
load 1, and write availability ``p^n`` (a single crash blocks writes).

The MOSTLY-READ configuration of the arbitrary protocol (all replicas on a
single physical level under a logical root) is exactly ROWA; the test suite
checks the two models agree on every quantity.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.protocols.base import ProtocolModel, check_probability
from repro.quorums.liveness import Liveness, live_members


class RowaProtocol(ProtocolModel):
    """ROWA over ``n`` replicas."""

    name = "ROWA"

    def select_read_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """Any single live replica (rng-uniform among the live ones)."""
        alive = live_members(range(self.n), live)
        if not alive:
            return None
        return frozenset({rng.choice(alive) if rng is not None else alive[0]})

    def select_write_quorum(
        self, live: Liveness, rng: random.Random | None = None
    ) -> frozenset[int] | None:
        """All replicas — available only when every one of them is live."""
        alive = live_members(range(self.n), live)
        if len(alive) < self.n:
            return None
        return frozenset(alive)

    def read_cost(self) -> float:
        """A read touches exactly one replica."""
        return 1.0

    def write_cost(self) -> float:
        """A write touches every replica."""
        return float(self.n)

    def read_availability(self, p: float) -> float:
        """Any live replica serves a read: ``1 - (1-p)^n``."""
        check_probability(p)
        return 1.0 - (1.0 - p) ** self.n

    def write_availability(self, p: float) -> float:
        """All replicas must be live: ``p^n``."""
        check_probability(p)
        return p**self.n

    def read_load(self) -> float:
        """Spreading singleton reads uniformly gives load ``1/n``."""
        return 1.0 / self.n

    def write_load(self) -> float:
        """Every replica is in the (unique) write quorum: load 1."""
        return 1.0

    def read_quorums(self) -> Iterator[frozenset[int]]:
        """The ``n`` singletons."""
        for sid in range(self.n):
            yield frozenset({sid})

    def write_quorums(self) -> Iterator[frozenset[int]]:
        """The single all-replica quorum."""
        yield frozenset(range(self.n))
