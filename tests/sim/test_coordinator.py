"""Unit tests for the quorum coordinator (reads, 2PC writes, retries)."""

import random

import pytest

from repro.core.builder import from_spec
from repro.core.protocol import ArbitraryProtocol
from repro.sim.coordinator import (
    FailureReason,
    QuorumCoordinator,
)
from repro.sim.events import Scheduler
from repro.sim.locks import LockManager
from repro.sim.network import Network
from repro.sim.site import Site


class Rig:
    """A full coordinator + sites assembly with controllable liveness."""

    def __init__(self, spec="1-3-5", max_attempts=3, timeout=8.0, seed=0):
        self.tree = from_spec(spec)
        self.scheduler = Scheduler()
        self.network = Network(self.scheduler, random.Random(seed), latency=1.0)
        self.sites = [Site(sid, self.network) for sid in range(self.tree.n)]
        self.locks = LockManager(self.scheduler)
        self.coordinator = QuorumCoordinator(
            sid=-1,
            network=self.network,
            system=ArbitraryProtocol(self.tree),
            locks=self.locks,
            detector=lambda sid: self.sites[sid].is_up,
            rng=random.Random(seed + 1),
            timeout=timeout,
            max_attempts=max_attempts,
            writer_id=self.tree.n,
        )
        self.outcomes = []

    def read(self, key):
        self.coordinator.read(key, self.outcomes.append)
        self.scheduler.run()
        return self.outcomes[-1]

    def write(self, key, value):
        self.coordinator.write(key, value, self.outcomes.append)
        self.scheduler.run()
        return self.outcomes[-1]


class TestValidation:
    def test_non_negative_sid_rejected(self):
        rig = Rig()
        with pytest.raises(ValueError, match="negative"):
            QuorumCoordinator(
                sid=3, network=rig.network, system=ArbitraryProtocol(rig.tree),
                locks=rig.locks, detector=lambda sid: True,
                rng=random.Random(0),
            )

    def test_positive_timeout_required(self):
        rig = Rig()
        with pytest.raises(ValueError, match="timeout"):
            QuorumCoordinator(
                sid=-2, network=rig.network, system=ArbitraryProtocol(rig.tree),
                locks=rig.locks, detector=lambda sid: True,
                rng=random.Random(0), timeout=0.0,
            )

    def test_at_least_one_attempt(self):
        rig = Rig()
        with pytest.raises(ValueError, match="attempt"):
            QuorumCoordinator(
                sid=-2, network=rig.network, system=ArbitraryProtocol(rig.tree),
                locks=rig.locks, detector=lambda sid: True,
                rng=random.Random(0), max_attempts=0,
            )


class TestReads:
    def test_read_of_unwritten_key(self):
        rig = Rig()
        outcome = rig.read("missing")
        assert outcome.success
        assert outcome.value is None
        assert len(outcome.quorum) == 2

    def test_read_returns_latest_write(self):
        rig = Rig()
        rig.write("k", "v1")
        rig.write("k", "v2")
        outcome = rig.read("k")
        assert outcome.success and outcome.value == "v2"
        assert outcome.timestamp.version == 2

    def test_read_fails_when_level_dead(self):
        rig = Rig(max_attempts=1)
        for sid in (0, 1, 2):
            rig.sites[sid].crash()
        outcome = rig.read("k")
        assert not outcome.success
        assert outcome.reason is FailureReason.UNAVAILABLE

    def test_read_retries_after_mid_flight_crash(self):
        rig = Rig(max_attempts=3)
        rig.write("k", "v")
        # crash a replica after selection by hooking the detector window:
        # crash at the instant the read starts (messages in flight die)
        victim = rig.sites[0]
        rig.coordinator.read("k", rig.outcomes.append)
        victim.crash()
        rig.scheduler.run()
        outcome = rig.outcomes[-1]
        assert outcome.success
        assert outcome.attempts >= 1

    def test_read_latency_is_round_trip(self):
        rig = Rig()
        outcome = rig.read("k")
        assert outcome.latency == pytest.approx(2.0)  # 1 out + 1 back


class TestWrites:
    def test_write_updates_quorum_members(self):
        rig = Rig()
        outcome = rig.write("k", "v")
        assert outcome.success
        level = outcome.quorum
        for sid in level:
            assert rig.sites[sid].store.read("k").value == "v"

    def test_write_version_increments(self):
        rig = Rig()
        first = rig.write("k", "a")
        second = rig.write("k", "b")
        assert second.timestamp.version == first.timestamp.version + 1

    def test_write_uses_single_level(self):
        rig = Rig()
        outcome = rig.write("k", "v")
        levels = [set(rig.tree.replica_ids_at(k)) for k in rig.tree.physical_levels]
        assert any(outcome.quorum == frozenset(level) for level in levels)

    def test_write_survives_level_crash(self):
        rig = Rig()
        for sid in (0, 1, 2):
            rig.sites[sid].crash()
        outcome = rig.write("k", "v")
        assert outcome.success
        assert outcome.quorum == frozenset(range(3, 8))

    def test_write_fails_when_no_level_complete(self):
        rig = Rig(max_attempts=1)
        rig.sites[0].crash()
        rig.sites[3].crash()
        outcome = rig.write("k", "v")
        assert not outcome.success
        assert outcome.reason is FailureReason.UNAVAILABLE

    def test_version_floor_prevents_collisions(self):
        """A write that cannot see the previous write's level still gets a
        strictly larger version (the coordinator is the serialisation
        point)."""
        rig = Rig()
        first = rig.write("k", "a")          # goes to the 3-level
        for sid in first.quorum:
            rig.sites[sid].crash()           # hide it completely
        second = rig.write("k", "b")
        assert second.success
        assert second.timestamp.version > first.timestamp.version

    def test_monotone_storage_after_recovery(self):
        rig = Rig()
        first = rig.write("k", "a")
        for sid in first.quorum:
            rig.sites[sid].crash()
        rig.write("k", "b")
        for sid in first.quorum:
            rig.sites[sid].recover()
        outcome = rig.read("k")
        assert outcome.value == "b"


class TestLocking:
    def test_locks_released_after_operations(self):
        rig = Rig()
        rig.write("k", "v")
        rig.read("k")
        assert rig.locks.holders("k") == {}

    def test_locks_released_after_failures(self):
        rig = Rig(max_attempts=1)
        for sid in (0, 1, 2):
            rig.sites[sid].crash()
        rig.read("k")
        rig.write("k", "v")
        assert rig.locks.holders("k") == {}

    def test_concurrent_writes_serialise(self):
        rig = Rig()
        done = []
        rig.coordinator.write("k", "a", done.append)
        rig.coordinator.write("k", "b", done.append)
        rig.scheduler.run()
        assert len(done) == 2
        assert all(outcome.success for outcome in done)
        versions = sorted(outcome.timestamp.version for outcome in done)
        assert versions == [1, 2]


class TestBaselineSystems:
    def test_tree_quorum_protocol_plugs_in_directly(self):
        from repro.protocols.tree_quorum import TreeQuorumProtocol

        system = TreeQuorumProtocol(7)
        live = set(range(7))
        read = system.select_read_quorum(lambda sid: sid in live)
        write = system.select_write_quorum(lambda sid: sid in live)
        assert read == write == frozenset({0, 1, 3})


class TestDecisionService:
    def test_recovered_participant_gets_commit(self):
        rig = Rig()
        outcome = rig.write("k", "v")
        victim = sorted(outcome.quorum)[0]
        # fake an in-doubt state: re-prepare then crash before decision
        from repro.sim.messages import DecisionRequest

        rig.network.send(DecisionRequest(src=victim, dst=-1, txid=999))
        rig.scheduler.run()
        # unknown txid -> presumed abort; known committed txid -> commit
        from repro.sim.messages import AbortMessage

        # the site got an abort for unknown txid 999 (no crash needed)
        assert rig.sites[victim].stats.aborts >= 1
