"""The arbitrary tree structure of Section 3.1.

A distributed system of ``n`` replicas is organised into a tree of height
``h``.  Every node is either *physical* (it hosts a replica of the data) or
*logical* (purely structural).  Following the paper's notation:

* ``S(i, k)`` is the i-th node of level k (i is 1-based, left to right);
* ``m_k`` is the number of nodes at level k, ``m_phy_k`` / ``m_log_k`` the
  physical / logical counts;
* a level is *physical* when it holds at least one physical node, *logical*
  when all its nodes are logical;
* ``K_phy`` / ``K_log`` are the sorted lists of physical / logical levels;
* ``d`` and ``e`` are the minimal and maximal physical-level sizes;
* Assumption 3.1 requires ``m_phy_0 < m_phy_1 <= m_phy_2 <= ...`` over the
  physical levels, i.e. physical levels grow (weakly) with depth, and the
  root level (at most one node) is strictly smaller than the next.

Replica identifiers (SIDs) are assigned to physical nodes in level order,
left to right, starting from 0 — the same orientation the paper uses.

The paper compresses a tree into a spec string such as ``"1-3-5"``: a leading
``1`` is a *logical* root and each subsequent number is the count of physical
nodes on one physical level.  :meth:`ArbitraryTree.spec` emits this notation
and :func:`repro.core.builder.from_spec` parses it.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from enum import Enum


class NodeKind(Enum):
    """Whether a tree node hosts a replica (physical) or not (logical)."""

    LOGICAL = "logical"
    PHYSICAL = "physical"


@dataclass(eq=False)
class TreeNode:
    """One node ``S(i, k)`` of the arbitrary tree.

    Attributes
    ----------
    level:
        The level ``k`` of the node (root is level 0).
    index:
        The 1-based position ``i`` of the node within its level, counted
        left to right as in the paper.
    kind:
        Physical (hosts a replica) or logical (structural only).
    replica_id:
        The SID of the replica hosted at this node, or ``None`` for logical
        nodes.  SIDs are unique across the tree.
    parent:
        Parent node, ``None`` for the root.
    children:
        Child nodes in left-to-right order.
    """

    level: int
    index: int
    kind: NodeKind
    replica_id: int | None = None
    parent: "TreeNode | None" = field(default=None, repr=False)
    children: list["TreeNode"] = field(default_factory=list, repr=False)

    @property
    def is_physical(self) -> bool:
        """True iff the node hosts a replica."""
        return self.kind is NodeKind.PHYSICAL

    @property
    def is_logical(self) -> bool:
        """True iff the node is structural only."""
        return self.kind is NodeKind.LOGICAL

    @property
    def is_leaf(self) -> bool:
        """True iff the node has no descendants (``m(i, k) = 0``)."""
        return not self.children

    def descendant_count(self) -> int:
        """``m(i, k)``: number of immediate descendants."""
        return len(self.children)

    def physical_descendant_count(self) -> int:
        """``m_phy(i, k)``: number of immediate physical descendants."""
        return sum(1 for child in self.children if child.is_physical)

    def logical_descendant_count(self) -> int:
        """``m_log(i, k)``: number of immediate logical descendants."""
        return sum(1 for child in self.children if child.is_logical)

    def __repr__(self) -> str:
        tag = "phy" if self.is_physical else "log"
        rid = f", sid={self.replica_id}" if self.replica_id is not None else ""
        return f"S_{tag}({self.index},{self.level}{rid})"


@dataclass(frozen=True)
class LevelSummary:
    """One row of the paper's Table 1: node counts for a single level."""

    level: int
    total: int
    physical: int
    logical: int


class AssumptionViolation(ValueError):
    """Raised when a tree does not satisfy Assumption 3.1."""


class ArbitraryTree:
    """An arbitrary tree of logical and physical nodes (Section 3.1).

    Construct via :meth:`from_level_counts` (or the higher-level helpers in
    :mod:`repro.core.builder`); the constructor itself takes fully wired
    levels and is mostly internal.

    Parameters
    ----------
    levels:
        ``levels[k]`` is the left-to-right sequence of nodes at level ``k``.
        Parent/child links must already be consistent.
    validate_assumption:
        When True (default), reject trees violating Assumption 3.1.
    sid_order:
        Optional permutation of ``range(n)`` assigning SIDs to physical
        nodes in level order (``sid_order[i]`` is the SID of the i-th
        physical node).  The default is the identity — SIDs 0..n-1 in
        level order, the paper's orientation.  Reconfiguration planning
        uses a permutation to *demote* chronically suspected replicas to
        the deepest (widest) level without changing the fleet.
    """

    def __init__(
        self,
        levels: Sequence[Sequence[TreeNode]],
        validate_assumption: bool = True,
        sid_order: Sequence[int] | None = None,
    ) -> None:
        if not levels or not levels[0]:
            raise ValueError("a tree needs at least a root level")
        if len(levels[0]) != 1:
            raise ValueError("level 0 must contain exactly the root node")
        self._levels: tuple[tuple[TreeNode, ...], ...] = tuple(
            tuple(level) for level in levels
        )
        self._check_structure()
        self._assign_replica_ids(sid_order)
        if validate_assumption:
            self.check_assumption()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_level_counts(
        cls,
        physical_counts: Sequence[int],
        logical_counts: Sequence[int] | None = None,
        validate_assumption: bool = True,
        sid_order: Sequence[int] | None = None,
    ) -> "ArbitraryTree":
        """Build a tree from per-level physical (and logical) node counts.

        ``physical_counts[k]`` is ``m_phy_k`` and ``logical_counts[k]`` is
        ``m_log_k`` (defaulting to zero everywhere except that a level with
        no nodes at all is rejected).  Children are attached to the previous
        level's nodes round-robin, which yields a well-formed tree; the
        protocol's behaviour depends only on the level composition, not on
        the particular parent assignment.
        """
        if logical_counts is None:
            logical_counts = [0] * len(physical_counts)
        if len(logical_counts) != len(physical_counts):
            raise ValueError("physical and logical count vectors differ in length")

        levels: list[list[TreeNode]] = []
        for k, (n_phy, n_log) in enumerate(zip(physical_counts, logical_counts)):
            if n_phy < 0 or n_log < 0:
                raise ValueError("node counts must be non-negative")
            if n_phy + n_log == 0:
                raise ValueError(f"level {k} has no nodes")
            nodes: list[TreeNode] = []
            for i in range(1, n_phy + n_log + 1):
                kind = NodeKind.PHYSICAL if i <= n_phy else NodeKind.LOGICAL
                nodes.append(TreeNode(level=k, index=i, kind=kind))
            if k > 0:
                parents = levels[k - 1]
                for position, node in enumerate(nodes):
                    parent = parents[position % len(parents)]
                    node.parent = parent
                    parent.children.append(node)
            levels.append(nodes)
        return cls(
            levels,
            validate_assumption=validate_assumption,
            sid_order=sid_order,
        )

    def _check_structure(self) -> None:
        for k, level in enumerate(self._levels):
            for position, node in enumerate(level, start=1):
                if node.level != k:
                    raise ValueError(
                        f"node at level {k} claims level {node.level}"
                    )
                if node.index != position:
                    raise ValueError(
                        f"node {node!r} out of order at position {position}"
                    )
                if k == 0 and node.parent is not None:
                    raise ValueError("root node must not have a parent")
                if k > 0:
                    if node.parent is None:
                        raise ValueError(f"non-root node {node!r} lacks a parent")
                    if node.parent.level != k - 1:
                        raise ValueError(
                            f"parent of {node!r} is not on the previous level"
                        )

    def _assign_replica_ids(
        self, sid_order: Sequence[int] | None = None
    ) -> None:
        physical = [
            node for level in self._levels for node in level if node.is_physical
        ]
        count = len(physical)
        if sid_order is None:
            order: Sequence[int] = range(count)
        else:
            order = tuple(sid_order)
            if sorted(order) != list(range(count)):
                raise ValueError(
                    f"sid_order must be a permutation of 0..{count - 1}, "
                    f"got {order}"
                )
        for node, sid in zip(physical, order):
            node.replica_id = sid
        for level in self._levels:
            for node in level:
                if node.is_logical:
                    node.replica_id = None
        self._n = count

    # ------------------------------------------------------------------
    # paper notation accessors
    # ------------------------------------------------------------------

    @property
    def height(self) -> int:
        """The height ``h`` of the tree (root-only tree has height 0)."""
        return len(self._levels) - 1

    @property
    def n(self) -> int:
        """Total number of replicas (physical nodes) in the tree."""
        return self._n

    @property
    def levels(self) -> tuple[tuple[TreeNode, ...], ...]:
        """All levels, outermost index is the level number ``k``."""
        return self._levels

    @property
    def root(self) -> TreeNode:
        """The root node ``S(1, 0)``."""
        return self._levels[0][0]

    def node(self, i: int, k: int) -> TreeNode:
        """The paper's ``S(i, k)``: i-th node (1-based) of level k."""
        return self._levels[k][i - 1]

    def m(self, k: int) -> int:
        """``m_k``: total number of nodes at level k."""
        return len(self._levels[k])

    def m_phy(self, k: int) -> int:
        """``m_phy_k``: number of physical nodes at level k."""
        return sum(1 for node in self._levels[k] if node.is_physical)

    def m_log(self, k: int) -> int:
        """``m_log_k``: number of logical nodes at level k."""
        return sum(1 for node in self._levels[k] if node.is_logical)

    @property
    def physical_levels(self) -> tuple[int, ...]:
        """``K_phy``: levels holding at least one physical node, ascending."""
        return tuple(
            k for k in range(len(self._levels)) if self.m_phy(k) > 0
        )

    @property
    def logical_levels(self) -> tuple[int, ...]:
        """``K_log``: levels whose nodes are all logical, ascending."""
        return tuple(
            k for k in range(len(self._levels)) if self.m_phy(k) == 0
        )

    @property
    def num_physical_levels(self) -> int:
        """``|K_phy| = 1 + h - |K_log|``."""
        return len(self.physical_levels)

    @property
    def num_logical_levels(self) -> int:
        """``|K_log|``."""
        return len(self.logical_levels)

    @property
    def physical_level_sizes(self) -> tuple[int, ...]:
        """``m_phy_k`` for each physical level ``k`` in ascending depth."""
        return tuple(self.m_phy(k) for k in self.physical_levels)

    @property
    def d(self) -> int:
        """Minimal physical-level size (drives the read load ``1/d``)."""
        return min(self.physical_level_sizes)

    @property
    def e(self) -> int:
        """Maximal physical-level size (the worst-case write cost)."""
        return max(self.physical_level_sizes)

    # ------------------------------------------------------------------
    # node / replica iteration
    # ------------------------------------------------------------------

    def nodes(self) -> Iterator[TreeNode]:
        """All nodes in level order, left to right."""
        for level in self._levels:
            yield from level

    def physical_nodes(self) -> Iterator[TreeNode]:
        """All physical nodes in SID order."""
        for node in self.nodes():
            if node.is_physical:
                yield node

    def physical_nodes_at(self, k: int) -> tuple[TreeNode, ...]:
        """The physical nodes of level k, left to right."""
        return tuple(node for node in self._levels[k] if node.is_physical)

    def replica_ids(self) -> tuple[int, ...]:
        """All replica SIDs (0..n-1)."""
        return tuple(range(self._n))

    def replica_ids_at(self, k: int) -> tuple[int, ...]:
        """SIDs of the replicas hosted on level k."""
        return tuple(
            node.replica_id
            for node in self._levels[k]
            if node.is_physical and node.replica_id is not None
        )

    def level_of_replica(self, sid: int) -> int:
        """The level hosting replica ``sid``."""
        for k in self.physical_levels:
            if sid in self.replica_ids_at(k):
                return k
        raise KeyError(f"no replica with SID {sid}")

    # ------------------------------------------------------------------
    # validation & presentation
    # ------------------------------------------------------------------

    def check_assumption(self) -> None:
        """Enforce Assumption 3.1.

        Physical-level sizes must be non-decreasing with depth; if the root
        level is physical its (singleton) size must be strictly smaller than
        the next physical level; and no logical level may appear *below* a
        physical one (the paper only ever places logical levels at the top
        of the tree — a logical level sandwiched between physical levels
        would make the ``m_phy`` sequence non-monotone).
        """
        sizes = self.physical_level_sizes
        k_phy = self.physical_levels
        for previous, current in zip(sizes, sizes[1:]):
            if current < previous:
                raise AssumptionViolation(
                    f"physical level sizes {sizes} are not non-decreasing"
                )
        if 0 in k_phy and len(sizes) > 1 and sizes[0] >= sizes[1]:
            raise AssumptionViolation(
                "a physical root level must be strictly smaller than the next"
            )
        if k_phy:
            span = range(k_phy[0], k_phy[-1] + 1)
            interior_logical = [k for k in span if k not in k_phy]
            if interior_logical:
                raise AssumptionViolation(
                    f"logical levels {interior_logical} lie between physical ones"
                )

    def satisfies_assumption(self) -> bool:
        """True iff the tree satisfies Assumption 3.1."""
        try:
            self.check_assumption()
        except AssumptionViolation:
            return False
        return True

    def level_table(self) -> list[LevelSummary]:
        """The paper's Table 1: per-level total/physical/logical counts."""
        return [
            LevelSummary(
                level=k,
                total=self.m(k),
                physical=self.m_phy(k),
                logical=self.m_log(k),
            )
            for k in range(len(self._levels))
        ]

    def spec(self) -> str:
        """The paper's compressed notation, e.g. ``"1-3-5"``.

        A leading ``1`` denotes a logical root; every following number is the
        physical count of one physical level.  Trees with a physical root are
        rendered with a ``P`` prefix (``"P1-2-4"``), and logical nodes beyond
        the root are not representable (the physical counts still are).
        """
        sizes = "-".join(str(size) for size in self.physical_level_sizes)
        if 0 in self.physical_levels:
            return f"P{sizes}"
        return f"1-{sizes}"

    def __repr__(self) -> str:
        return (
            f"ArbitraryTree(spec={self.spec()!r}, n={self.n}, "
            f"h={self.height}, |K_phy|={self.num_physical_levels})"
        )

    def to_dict(self) -> dict:
        """JSON-ready structural snapshot (counts only; wiring is canonical).

        Round-trips through :meth:`from_dict`: the protocol's behaviour
        depends only on per-level composition, which is exactly what is
        serialised.
        """
        return {
            "physical": [self.m_phy(k) for k in range(len(self._levels))],
            "logical": [self.m_log(k) for k in range(len(self._levels))],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ArbitraryTree":
        """Rebuild a tree from :meth:`to_dict` output."""
        try:
            physical = list(payload["physical"])
            logical = list(payload["logical"])
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed tree payload: {payload!r}") from error
        return cls.from_level_counts(physical, logical)

    def describe(self) -> str:
        """Multi-line human-readable description of the level structure."""
        lines = [f"ArbitraryTree {self.spec()} (n={self.n}, h={self.height})"]
        for row in self.level_table():
            tag = "physical" if row.physical else "logical"
            lines.append(
                f"  level {row.level}: m={row.total} "
                f"(phy={row.physical}, log={row.logical}) [{tag}]"
            )
        return "\n".join(lines)


def physical_level_partition(tree: ArbitraryTree) -> list[tuple[int, ...]]:
    """SIDs grouped by physical level — the write quorums of the protocol."""
    return [tree.replica_ids_at(k) for k in tree.physical_levels]


def total_replicas(counts: Iterable[int]) -> int:
    """Sum of per-level physical counts (the paper's ``n``)."""
    return sum(counts)
