"""Scaling regressions for the workload generator.

Two historical O(N) costs are pinned down here:

* Zipf key picking used ``random.choices(weights=...)``, which
  re-accumulates the full weight list on **every operation** — O(keys)
  per pick.  The fix precomputes cumulative weights once; these tests
  prove the sampled stream is bit-identical to the old path and that a
  million-key spec samples in O(log keys) per pick.
* Poisson arrivals were all scheduled at ``t=0`` — O(operations) heap
  entries before the first event ran.  The fix chains each arrival from
  the previous one; these tests prove the arrival times are
  bit-identical to the old upfront schedule and the heap stays flat.

Plus distributional sanity: a chi-square test that Zipf sampling matches
its law (and is head-heavy), and diurnal-curve behaviour.
"""

import math
import random
import time
from itertools import accumulate

import pytest

from repro.sim.coordinator import OperationOutcome
from repro.sim.events import Scheduler
from repro.sim.workload import Workload, WorkloadSpec


class InstantCoordinator:
    """Records issue times and completes every operation immediately."""

    def __init__(self, scheduler):
        self._scheduler = scheduler
        self.issue_times: list[float] = []
        self.keys: list[str] = []

    def _complete(self, op_type, key, done):
        now = self._scheduler.now
        self.issue_times.append(now)
        self.keys.append(key)
        outcome = OperationOutcome(
            op_type=op_type, key=key, success=True,
            started_at=now, finished_at=now,
        )
        # Completing through the scheduler (not synchronously) keeps the
        # closed loop iterative instead of recursive.
        self._scheduler.schedule_at(now, lambda: done(outcome))

    def read(self, key, done):
        self._complete("read", key, done)

    def write(self, key, value, done):
        self._complete("write", key, done)


def _drive(spec: WorkloadSpec, seed: int = 0):
    scheduler = Scheduler()
    coordinator = InstantCoordinator(scheduler)
    workload = Workload(
        spec=spec,
        coordinator=[coordinator],
        scheduler=scheduler,
        rng=random.Random(seed),
        on_outcome=lambda outcome: None,
    )
    workload.start()
    while scheduler.step():
        pass
    assert workload.completed == spec.operations
    return scheduler, coordinator


class TestZipfFastPath:
    def test_stream_bit_identical_to_weights_path(self):
        # The old implementation drew
        # rng.choices(range(keys), weights=[1/r**s ...]) per pick;
        # choices() internally accumulates the weights and bisects, so a
        # precomputed cum_weights pick must consume the identical RNG
        # state and return the identical key, op for op.
        spec = WorkloadSpec(operations=500, keys=64, zipf_s=1.2)
        _scheduler, coordinator = _drive(spec, seed=42)

        weights = [1.0 / (rank**spec.zipf_s) for rank in range(1, spec.keys + 1)]
        old_rng = random.Random(42)
        expected = []
        for _ in range(spec.operations):
            (index,) = old_rng.choices(range(spec.keys), weights=weights)
            old_rng.random()  # the read/write draw
            expected.append(f"k{index}")
        assert coordinator.keys == expected

    def test_million_key_spec_samples_without_linear_scans(self):
        # With the O(keys)-per-op path, 2000 picks over 1M keys is 2e9
        # weight additions — minutes.  The bisect path does the O(keys)
        # accumulation exactly once; the whole run fits in a generous
        # wall-clock bound even on a loaded CI box.
        spec = WorkloadSpec(operations=2000, keys=1_000_000, zipf_s=1.1)
        started = time.perf_counter()
        _scheduler, coordinator = _drive(spec, seed=7)
        elapsed = time.perf_counter() - started
        assert len(coordinator.keys) == 2000
        assert elapsed < 20.0

    def test_cum_weights_built_once_and_monotone(self):
        spec = WorkloadSpec(operations=1, keys=1000, zipf_s=1.0)
        workload = Workload(
            spec=spec,
            coordinator=[InstantCoordinator(Scheduler())],
            scheduler=Scheduler(),
            rng=random.Random(0),
            on_outcome=lambda outcome: None,
        )
        cum = workload._cum_weights
        assert cum is not None and len(cum) == 1000
        assert all(a < b for a, b in zip(cum, cum[1:]))

    def test_uniform_spec_skips_weighting(self):
        spec = WorkloadSpec(operations=1, keys=1000)
        workload = Workload(
            spec=spec,
            coordinator=[InstantCoordinator(Scheduler())],
            scheduler=Scheduler(),
            rng=random.Random(0),
            on_outcome=lambda outcome: None,
        )
        assert workload._cum_weights is None


class TestZipfDistribution:
    def test_chi_square_matches_zipf_law(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        spec = WorkloadSpec(operations=20_000, keys=8, zipf_s=1.0)
        _scheduler, coordinator = _drive(spec, seed=11)
        counts = [0] * spec.keys
        for key in coordinator.keys:
            counts[int(key[1:])] += 1
        weights = [1.0 / rank for rank in range(1, spec.keys + 1)]
        total = sum(weights)
        expected = [w / total * spec.operations for w in weights]
        result = scipy_stats.chisquare(counts, expected)
        assert result.pvalue > 1e-3

    def test_head_heavier_than_uniform(self):
        spec = WorkloadSpec(operations=10_000, keys=100, zipf_s=1.0)
        _scheduler, coordinator = _drive(spec, seed=3)
        head = sum(1 for key in coordinator.keys if int(key[1:]) < 10)
        # Under s=1.0 the top decile carries ~56% of the mass; under
        # uniform it would carry 10%.
        assert head / spec.operations > 0.4


class TestPoissonIncrementalSchedule:
    def test_arrival_times_bit_identical_to_upfront_schedule(self):
        # The old implementation drew every expovariate gap up front and
        # scheduled the cumulative sums at t=0.  The chained scheduler
        # must reproduce those arrival instants exactly: same derived
        # arrival RNG, same gap stream, same cumulative sums.
        spec = WorkloadSpec(operations=300, keys=16, arrival="poisson", rate=0.5)
        _scheduler, coordinator = _drive(spec, seed=99)

        main_rng = random.Random(99)
        arrival_rng = random.Random(main_rng.getrandbits(64))
        gaps = [arrival_rng.expovariate(spec.rate) for _ in range(300)]
        expected = list(accumulate(gaps))
        assert coordinator.issue_times == expected

    def test_heap_holds_one_pending_arrival(self):
        # 200k operations used to mean 200k heap entries before the
        # first one ran; now start() schedules exactly one arrival and
        # the heap never accumulates the whole horizon.
        spec = WorkloadSpec(
            operations=200_000, keys=4, arrival="poisson", rate=10.0
        )
        scheduler = Scheduler()
        coordinator = InstantCoordinator(scheduler)
        workload = Workload(
            spec=spec,
            coordinator=[coordinator],
            scheduler=scheduler,
            rng=random.Random(1),
            on_outcome=lambda outcome: None,
        )
        workload.start()
        assert scheduler.pending_events == 1
        for _ in range(1000):
            scheduler.step()
        assert scheduler.pending_events <= 1

    def test_closed_loop_unaffected(self):
        spec = WorkloadSpec(operations=50, keys=4)
        scheduler, coordinator = _drive(spec, seed=5)
        assert len(coordinator.issue_times) == 50
        assert scheduler.now == 0.0  # instant ops, no arrival process


class TestDiurnalCurve:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(diurnal_amplitude=0.5)  # needs poisson
        with pytest.raises(ValueError):
            WorkloadSpec(
                arrival="poisson", diurnal_amplitude=0.5, diurnal_period=0.0
            )
        with pytest.raises(ValueError):
            WorkloadSpec(
                arrival="poisson", diurnal_amplitude=1.5, diurnal_period=10.0
            )

    def test_rate_curve_shape(self):
        spec = WorkloadSpec(
            arrival="poisson", rate=2.0,
            diurnal_period=100.0, diurnal_amplitude=0.5,
        )
        assert spec.rate_at(0.0) == pytest.approx(2.0)
        assert spec.rate_at(25.0) == pytest.approx(3.0)  # peak
        assert spec.rate_at(75.0) == pytest.approx(1.0)  # trough
        assert spec.peak_rate == pytest.approx(3.0)

    def test_zero_amplitude_is_bit_identical_to_constant_rate(self):
        constant = WorkloadSpec(
            operations=200, keys=8, arrival="poisson", rate=1.0
        )
        flat_diurnal = WorkloadSpec(
            operations=200, keys=8, arrival="poisson", rate=1.0,
            diurnal_period=50.0, diurnal_amplitude=0.0,
        )
        _s1, first = _drive(constant, seed=21)
        _s2, second = _drive(flat_diurnal, seed=21)
        assert first.issue_times == second.issue_times
        assert first.keys == second.keys

    def test_peak_half_cycle_gets_more_arrivals(self):
        period = 200.0
        spec = WorkloadSpec(
            operations=4000, keys=4, arrival="poisson", rate=1.0,
            diurnal_period=period, diurnal_amplitude=0.9,
        )
        _scheduler, coordinator = _drive(spec, seed=17)
        peak = trough = 0
        for t in coordinator.issue_times:
            phase = math.fmod(t, period) / period
            if phase < 0.5:
                peak += 1
            else:
                trough += 1
        assert peak > 1.5 * trough

    def test_diurnal_deterministic(self):
        spec = WorkloadSpec(
            operations=300, keys=8, arrival="poisson", rate=1.0,
            diurnal_period=60.0, diurnal_amplitude=0.7,
        )
        _s1, first = _drive(spec, seed=8)
        _s2, second = _drive(spec, seed=8)
        assert first.issue_times == second.issue_times
