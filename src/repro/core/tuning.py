"""Frequency-aware tree configuration advisor (Section 3.3 trade-offs).

The paper's central selling point is that the protocol is a *spectrum*: the
same read/write rules run over any tree, and the tree shape is chosen from
the system's read/write mix.  This module automates that choice: it searches
the space of level partitions of ``n`` replicas (each candidate satisfying
Assumption 3.1) and scores each with a user-selectable objective combining
the read fraction ``f``:

* ``"expected_load"`` (default) — ``f * E[L_RD] + (1-f) * E[L_WR]``,
  the Equation-3.2 expected loads, which fold availability in;
* ``"load"`` — the same mix over the optimal loads (ignores failures);
* ``"cost"`` — ``f * RD_cost + (1-f) * WR_cost_avg``, normalised by ``n``.

Candidates are the near-even partitions into ``1..n`` levels plus the
paper's own shapes (Algorithm 1 / balanced head-of-tree, MOSTLY-READ,
MOSTLY-WRITE), so the advisor can never do worse than the paper's
prescription under the chosen objective.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import builder, metrics
from repro.core.tree import ArbitraryTree

_OBJECTIVES = ("expected_load", "load", "cost")


@dataclass(frozen=True)
class ScoredTree:
    """One candidate tree and its objective score (lower is better)."""

    tree: ArbitraryTree
    score: float
    read_metric: float
    write_metric: float


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a tuning search.

    Attributes
    ----------
    best:
        The best-scoring candidate.
    alternatives:
        All evaluated candidates sorted by ascending score (best first);
        ``alternatives[0]`` is ``best``.
    objective:
        The objective name that was optimised.
    read_fraction:
        The read fraction ``f`` used in the mix.
    p:
        The per-replica availability used for expected-load objectives.
    """

    best: ScoredTree
    alternatives: tuple[ScoredTree, ...]
    objective: str
    read_fraction: float
    p: float

    @property
    def tree(self) -> ArbitraryTree:
        """Shorthand for the winning tree."""
        return self.best.tree


def _score(
    tree: ArbitraryTree, objective: str, read_fraction: float, p: float
) -> ScoredTree:
    f = read_fraction
    if objective == "expected_load":
        read_metric = metrics.expected_read_load(tree, p)
        write_metric = metrics.expected_write_load(tree, p)
    elif objective == "load":
        read_metric = metrics.read_load(tree)
        write_metric = metrics.write_load(tree)
    elif objective == "cost":
        read_metric = metrics.read_cost(tree) / tree.n
        write_metric = metrics.write_cost_avg(tree) / tree.n
    else:
        raise ValueError(
            f"unknown objective {objective!r}; pick one of {_OBJECTIVES}"
        )
    return ScoredTree(
        tree=tree,
        score=f * read_metric + (1.0 - f) * write_metric,
        read_metric=read_metric,
        write_metric=write_metric,
    )


def candidate_trees(n: int, max_levels: int | None = None) -> list[ArbitraryTree]:
    """The candidate pool: near-even partitions plus the paper's shapes.

    Near-even partitions cover every level count from 1 (MOSTLY-READ-like)
    to ``n`` (one replica per level); duplicates by spec are dropped.
    """
    if n < 1:
        raise ValueError("n must be positive")
    limit = n if max_levels is None else min(max_levels, n)
    seen: set[str] = set()
    pool: list[ArbitraryTree] = []

    def add(tree: ArbitraryTree) -> None:
        spec = tree.spec()
        if spec not in seen:
            seen.add(spec)
            pool.append(tree)

    for levels in range(1, limit + 1):
        sizes = builder._spread(n, levels)
        add(builder.from_physical_level_sizes(sizes))
    add(builder.mostly_read(n))
    if n >= 2:
        add(builder.mostly_write(n))
    add(builder.recommended_tree(n))
    if n > 64:
        add(builder.algorithm_1(n))
    return pool


def recommend(
    n: int,
    p: float = 0.9,
    read_fraction: float = 0.5,
    objective: str = "expected_load",
    max_levels: int | None = None,
) -> TuningResult:
    """Pick the tree shape best suited to the given read/write mix.

    Parameters
    ----------
    n:
        Number of replicas.
    p:
        Per-replica availability (used by the expected-load objective).
    read_fraction:
        Fraction ``f`` of operations that are reads, in [0, 1].
    objective:
        ``"expected_load"``, ``"load"`` or ``"cost"`` (see module docs).
    max_levels:
        Optional cap on the number of physical levels to consider (bounds
        the search for very large ``n``).

    Returns
    -------
    TuningResult
        The best tree plus the full scored candidate list.
    """
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError(f"read_fraction must be in [0, 1], got {read_fraction}")
    scored = [
        _score(tree, objective, read_fraction, p)
        for tree in candidate_trees(n, max_levels=max_levels)
    ]
    scored.sort(key=lambda item: (item.score, item.tree.num_physical_levels))
    return TuningResult(
        best=scored[0],
        alternatives=tuple(scored),
        objective=objective,
        read_fraction=read_fraction,
        p=p,
    )


@dataclass(frozen=True)
class ReshapePlan:
    """A fault-aware reconfiguration target.

    Attributes
    ----------
    tree:
        The recommended tree with suspicion-aware SID placement applied.
    result:
        The underlying :func:`recommend` search (shape choice rationale).
    evicted:
        SIDs demoted to the deepest slots because they were chronically
        suspected.
    sid_order:
        The full SID permutation installed on ``tree``.
    """

    tree: ArbitraryTree
    result: TuningResult
    evicted: tuple[int, ...]
    sid_order: tuple[int, ...]


def plan_reshape(
    n: int,
    suspected: frozenset[int] | set[int] = frozenset(),
    p: float = 0.9,
    read_fraction: float = 0.5,
    objective: str = "expected_load",
    max_levels: int | None = None,
) -> ReshapePlan:
    """Plan a reconfiguration target from workload mix *and* fault evidence.

    The shape comes from :func:`recommend` (hot levels widen as the write
    fraction grows, since wider levels spread write load).  On top of the
    shape, chronically suspected SIDs (a
    :meth:`~repro.fault.detector.SuspectList.chronic` snapshot) are
    *evicted* from the narrow upper levels: healthy SIDs fill the
    level-order slots first and suspects land on the deepest slots — by
    Assumption 3.1 the deepest physical level is the widest, where one
    flaky replica vetoes the fewest read quorums and the level's write
    quorum has the most substitutes.  The fleet itself never changes:
    eviction is demotion, every SID keeps hosting data.
    """
    result = recommend(
        n,
        p=p,
        read_fraction=read_fraction,
        objective=objective,
        max_levels=max_levels,
    )
    shape = result.tree
    suspects = sorted(sid for sid in suspected if 0 <= sid < n)
    healthy = [sid for sid in range(n) if sid not in set(suspects)]
    order = tuple(healthy + suspects)
    tree = builder.from_physical_level_sizes(
        shape.physical_level_sizes,
        logical_root=0 not in shape.physical_levels,
        sid_order=order,
    )
    return ReshapePlan(
        tree=tree,
        result=result,
        evicted=tuple(suspects),
        sid_order=order,
    )
