"""Trace recorders: the sink every instrumented component writes to.

Two implementations share one duck-typed interface:

* :class:`NullRecorder` — the default everywhere.  ``enabled`` is False
  and every hook is a no-op, so instrumented hot paths cost one attribute
  check (``if recorder.enabled:``) when tracing is off — the simulator
  runs at full speed unless a trace was asked for.
* :class:`TraceRecorder` — keeps every span, per-message-type counter and
  scalar metric observation in memory; traces export as JSON Lines
  (:mod:`repro.obs.export`) and render as reports (:mod:`repro.obs.report`).

Span ids are recorder-local, start at 1, and 0 is the reserved "no span"
sentinel, so context structs can hold plain ints with no ``None`` checks.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.obs.spans import STATUS_OK, Span, SpanKind


class NullRecorder:
    """No-op recorder: the zero-overhead default when tracing is off."""

    enabled: bool = False

    def start_trace(self, name: str, at: float, **attributes: Any) -> int:
        """Open a root (operation) span; returns its trace/span id."""
        return 0

    def start_span(
        self,
        trace_id: int,
        parent_id: int,
        name: str,
        kind: SpanKind,
        at: float,
        **attributes: Any,
    ) -> int:
        """Open a child span; returns its span id."""
        return 0

    def end_span(
        self, span_id: int, at: float, status: str = STATUS_OK, **attributes: Any
    ) -> None:
        """Close a span (idempotent; span id 0 is ignored)."""

    def event(
        self,
        trace_id: int,
        parent_id: int,
        name: str,
        at: float,
        status: str = STATUS_OK,
        **attributes: Any,
    ) -> None:
        """Record a point-in-time event span (start == end)."""

    def count(self, group: str, name: str, delta: int = 1) -> None:
        """Bump a counter, e.g. ``count("message.sent", "ReadRequest")``."""

    def observe(self, metric: str, value: float) -> None:
        """Record one scalar observation, e.g. a lock wait time."""

    def singleton_trace(self, name: str) -> int:
        """A memoised root span for component-level (non-operation) events.

        Long-lived components such as the failure detector emit events
        that belong to no single operation; they attach to one shared
        root trace per component name instead (created on first use,
        closed immediately so it never lingers as an open span).
        """
        return 0


#: Shared no-op instance; safe because NullRecorder is stateless.
NULL_RECORDER = NullRecorder()


class TraceRecorder(NullRecorder):
    """In-memory recorder backing traces, counters and metrics."""

    enabled = True

    def __init__(self) -> None:
        # A plain int counter, not itertools.count: recorders cross process
        # boundaries in parallel runs and generator-based counters do not
        # pickle.
        self._next_id = 1
        #: Component name -> root span id (see :meth:`singleton_trace`).
        self._singletons: dict[str, int] = {}
        #: Every span ever started, keyed by span id (insertion-ordered).
        self.spans: dict[int, Span] = {}
        #: ``group -> Counter(name -> count)`` e.g. message send/drop tallies.
        self.counters: dict[str, Counter] = {}
        #: ``metric -> raw observations`` e.g. lock wait/hold times.
        self.metrics: dict[str, list[float]] = {}

    def _new_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def start_trace(self, name: str, at: float, **attributes: Any) -> int:
        span_id = self._new_id()
        self.spans[span_id] = Span(
            trace_id=span_id,
            span_id=span_id,
            parent_id=None,
            name=name,
            kind=SpanKind.OPERATION,
            start=at,
            attributes=attributes,
        )
        return span_id

    def start_span(
        self,
        trace_id: int,
        parent_id: int,
        name: str,
        kind: SpanKind,
        at: float,
        **attributes: Any,
    ) -> int:
        span_id = self._new_id()
        self.spans[span_id] = Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id or None,
            name=name,
            kind=kind,
            start=at,
            attributes=attributes,
        )
        return span_id

    def end_span(
        self, span_id: int, at: float, status: str = STATUS_OK, **attributes: Any
    ) -> None:
        span = self.spans.get(span_id)
        if span is None or span.end is not None:
            return
        span.end = at
        span.status = status
        if attributes:
            span.attributes.update(attributes)

    def event(
        self,
        trace_id: int,
        parent_id: int,
        name: str,
        at: float,
        status: str = STATUS_OK,
        **attributes: Any,
    ) -> None:
        span_id = self.start_span(
            trace_id, parent_id, name, SpanKind.EVENT, at, **attributes
        )
        self.end_span(span_id, at, status=status)

    def count(self, group: str, name: str, delta: int = 1) -> None:
        counter = self.counters.get(group)
        if counter is None:
            counter = self.counters[group] = Counter()
        counter[name] += delta

    def observe(self, metric: str, value: float) -> None:
        self.metrics.setdefault(metric, []).append(value)

    def singleton_trace(self, name: str) -> int:
        trace_id = self._singletons.get(name)
        if trace_id is None:
            trace_id = self.start_trace(name, 0.0, singleton=True)
            self.end_span(trace_id, 0.0)
            self._singletons[name] = trace_id
        return trace_id

    # ------------------------------------------------------------------
    # merging (parallel shard fold)
    # ------------------------------------------------------------------

    def merge(self, other: "TraceRecorder") -> "TraceRecorder":
        """Absorb another recorder's spans, counters and metrics.

        The other recorder's span ids are renumbered into this recorder's
        id space (ids are recorder-local, so shards reuse the same small
        integers); parent/trace references are remapped consistently.
        Returns self.
        """
        mapping: dict[int, int] = {}
        for old_id in other.spans:
            mapping[old_id] = self._new_id()
        for old_id, span in other.spans.items():
            new_id = mapping[old_id]
            self.spans[new_id] = Span(
                trace_id=mapping.get(span.trace_id, span.trace_id),
                span_id=new_id,
                parent_id=(
                    None
                    if span.parent_id is None
                    else mapping.get(span.parent_id, span.parent_id)
                ),
                name=span.name,
                kind=span.kind,
                start=span.start,
                end=span.end,
                status=span.status,
                attributes=dict(span.attributes),
            )
        for group, counter in other.counters.items():
            self.count_all(group, counter)
        for metric, values in other.metrics.items():
            self.metrics.setdefault(metric, []).extend(values)
        return self

    def count_all(self, group: str, counts: Counter) -> None:
        """Bulk form of :meth:`count` (used by merges)."""
        counter = self.counters.get(group)
        if counter is None:
            counter = self.counters[group] = Counter()
        counter.update(counts)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        """Every closed span, in start order."""
        return [span for span in self.spans.values() if span.finished]

    def open_spans(self) -> list[Span]:
        """Spans started but never ended (empty for a finished run)."""
        return [span for span in self.spans.values() if not span.finished]

    def traces(self) -> dict[int, list[Span]]:
        """Spans grouped by trace id, each list in start order."""
        grouped: dict[int, list[Span]] = {}
        for span in self.spans.values():
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def trace(self, trace_id: int) -> list[Span]:
        """All spans of one trace, in start order."""
        return [s for s in self.spans.values() if s.trace_id == trace_id]

    def metric_summaries(self) -> dict[str, dict[str, float]]:
        """count/mean/min/max per metric (the exported form of metrics)."""
        summaries: dict[str, dict[str, float]] = {}
        for name, values in self.metrics.items():
            if not values:
                continue
            summaries[name] = {
                "count": float(len(values)),
                "mean": sum(values) / len(values),
                "min": min(values),
                "max": max(values),
            }
        return summaries
