"""A replicated key-value store built on the arbitrary protocol.

A small session against the full simulated stack (sites, lossy network,
centralised locking, 2PC): write a few keys, crash an entire physical
level, keep reading and writing, recover, and verify one-copy equivalence —
every read returned the latest committed value for its key.

This is the "client library" view: :class:`ReplicatedKV` wraps the
event-driven coordinator behind a blocking get/put API by running the
simulation loop until each operation completes.

Run:  python examples/replicated_kv.py
"""

from __future__ import annotations

import random
from typing import Any

from repro.core import from_spec
from repro.core.tree import ArbitraryTree
from repro.sim.coordinator import OperationOutcome, QuorumCoordinator
from repro.sim.engine import SimulationConfig, build_simulation


class ReplicatedKV:
    """Blocking get/put facade over the simulated replicated store."""

    def __init__(self, tree: ArbitraryTree, seed: int = 0) -> None:
        config = SimulationConfig(tree=tree, seed=seed)
        (self._scheduler, _workload, self._monitor,
         self._network, self.sites) = build_simulation(config)
        self._coordinator: QuorumCoordinator = self._network.endpoint(-1)

    def _run(self, op) -> OperationOutcome:
        outcome: list[OperationOutcome] = []
        op(outcome.append)
        while not outcome:
            if not self._scheduler.step():
                raise RuntimeError("simulation stalled")
        return outcome[0]

    def put(self, key: str, value: Any) -> OperationOutcome:
        """Write through a quorum (2PC); returns the outcome."""
        return self._run(lambda done: self._coordinator.write(key, value, done))

    def get(self, key: str) -> OperationOutcome:
        """Read through a quorum; returns the outcome."""
        return self._run(lambda done: self._coordinator.read(key, done))

    def crash_level(self, tree: ArbitraryTree, level: int) -> None:
        """Fail-stop every replica of one physical level."""
        for sid in tree.replica_ids_at(level):
            self.sites[sid].crash()

    def recover_all(self) -> None:
        """Bring every replica back up."""
        for site in self.sites:
            site.recover()


def show(label: str, outcome: OperationOutcome) -> None:
    status = "ok " if outcome.success else "FAIL"
    detail = (
        f"value={outcome.value!r} ts={outcome.timestamp}"
        if outcome.success
        else f"reason={outcome.reason.value}"
    )
    print(f"  [{status}] {label:<28} quorum={sorted(outcome.quorum)} {detail}")


def main() -> None:
    tree = from_spec("1-3-5")
    print(f"replicated KV over {tree.spec()} ({tree.n} replicas)\n")
    kv = ReplicatedKV(tree, seed=1)
    audit: dict[str, Any] = {}

    print("healthy cluster:")
    for key, value in [("city", "Toulouse"), ("venue", "ICDCS"), ("year", 2008)]:
        outcome = kv.put(key, value)
        show(f"put {key}={value!r}", outcome)
        if outcome.success:
            audit[key] = value
    show("get city", kv.get("city"))

    print("\ncrash ALL of physical level 1 (replicas 0-2):")
    kv.crash_level(tree, 1)
    outcome = kv.put("year", 2026)   # level 2 is still complete
    show("put year=2026", outcome)
    if outcome.success:
        audit["year"] = 2026
    outcome = kv.get("year")          # reads need one replica of EVERY level
    show("get year", outcome)
    print("  -> writes survive (level 2 forms a write quorum); reads cannot")
    print("     cover level 1, so the protocol refuses them rather than risk")
    print("     returning stale data.")

    print("\nrecover everyone:")
    kv.recover_all()
    for key in ("city", "venue", "year"):
        outcome = kv.get(key)
        show(f"get {key}", outcome)
        assert outcome.success and outcome.value == audit[key], (
            f"one-copy equivalence violated for {key}"
        )
    print("\none-copy equivalence held: every read returned the latest")
    print("committed value, including the write performed during the outage.")

    # A mixed random session as a stress finale.
    rng = random.Random(7)
    failures = 0
    for i in range(200):
        key = f"k{rng.randrange(6)}"
        if rng.random() < 0.5:
            outcome = kv.put(key, i)
            if outcome.success:
                audit[key] = i
        else:
            outcome = kv.get(key)
            if outcome.success and key in audit:
                assert outcome.value == audit[key]
        failures += not outcome.success
    print(f"\nstress session: 200 mixed ops, {failures} failures, "
          "zero consistency violations")


if __name__ == "__main__":
    main()
