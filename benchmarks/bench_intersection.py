"""Section 3.2.3: the bi-coterie property, checked exhaustively.

The paper proves by induction that every read quorum intersects every write
quorum.  This bench re-validates the property from first principles (full
enumeration and pairwise checks) across a zoo of tree shapes, and times the
validation as the measured workload.
"""

from __future__ import annotations

import pytest

from repro.core.builder import (
    from_spec,
    mostly_read,
    mostly_write,
    recommended_tree,
    sqrt_levels,
    unmodified_binary,
)
from repro.core.protocol import ArbitraryProtocol
from repro.quorums.base import is_cross_intersecting

TREES = (
    [from_spec(spec) for spec in ("1-3-5", "1-2-2-2", "1-4-4", "P1-2-4", "1-9")]
    + [mostly_read(n) for n in (2, 8, 33)]
    + [mostly_write(n) for n in (5, 9, 15)]
    + [sqrt_levels(n) for n in (6, 12, 20, 30)]
    + [recommended_tree(40), unmodified_binary(15)]
)


def _check_tree(tree) -> int:
    protocol = ArbitraryProtocol(tree)
    reads = list(protocol.read_quorums())
    writes = protocol.write_quorums()
    assert is_cross_intersecting(reads, writes)
    return len(reads)


def test_all_trees_are_bicoteries(emit, benchmark):
    total = benchmark(lambda: sum(_check_tree(tree) for tree in TREES))
    emit(
        "intersection",
        f"bi-coterie property verified on {len(TREES)} trees, "
        f"{total} read quorums enumerated per round",
    )
    assert total > 0


def test_every_read_quorum_hits_every_level(benchmark):
    tree = from_spec("1-3-5")
    protocol = ArbitraryProtocol(tree)

    def check():
        for read in protocol.read_quorums():
            for k in tree.physical_levels:
                assert len(read & set(tree.replica_ids_at(k))) == 1
        return True

    assert benchmark(check)


def test_write_quorums_partition_universe(benchmark):
    tree = recommended_tree(40)
    protocol = ArbitraryProtocol(tree)

    def check():
        writes = protocol.write_quorums()
        union = frozenset().union(*writes)
        assert union == protocol.universe
        total = sum(len(w) for w in writes)
        assert total == tree.n  # pairwise disjoint
        return True

    assert benchmark(check)
