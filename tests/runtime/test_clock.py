"""AsyncClock: the wall-clock side of the transport seam."""

import asyncio

import pytest

from repro.runtime.clock import AsyncClock
from repro.runtime.interfaces import CancelHandle, Clock


def test_satisfies_the_seam_protocols():
    async def main():
        clock = AsyncClock(asyncio.get_running_loop())
        assert isinstance(clock, Clock)
        assert isinstance(clock.schedule(0.0, lambda: None), CancelHandle)

    asyncio.run(main())


def test_now_tracks_loop_time():
    async def main():
        loop = asyncio.get_running_loop()
        clock = AsyncClock(loop)
        before = clock.now
        await asyncio.sleep(0.02)
        assert clock.now >= before + 0.015
        assert clock.now == pytest.approx(loop.time(), abs=1e-3)

    asyncio.run(main())


def test_call_later_fires_with_and_without_arg():
    async def main():
        clock = AsyncClock(asyncio.get_running_loop())
        fired = []
        clock.call_later(0.0, fired.append, "arg")
        clock.call_later(0.0, lambda: fired.append("thunk"))
        clock.call_later(0.0, fired.append, None)  # None is a legal arg
        await asyncio.sleep(0.05)
        assert fired == ["arg", "thunk", None]

    asyncio.run(main())


def test_same_delay_fires_in_scheduling_order():
    # The ordering contract the coordinator's zero-delay completion
    # deliveries rely on — asyncio's ready queue is FIFO, like the
    # simulator's (time, sequence) heap order.
    async def main():
        clock = AsyncClock(asyncio.get_running_loop())
        fired = []
        for tag in range(8):
            clock.call_later(0.0, fired.append, tag)
        await asyncio.sleep(0.05)
        assert fired == list(range(8))

    asyncio.run(main())


def test_schedule_returns_cancellable_handle():
    async def main():
        clock = AsyncClock(asyncio.get_running_loop())
        fired = []
        handle = clock.schedule(0.01, fired.append, "doomed")
        kept = clock.schedule(0.01, fired.append, "kept")
        assert handle.time == pytest.approx(clock.now + 0.01, abs=5e-3)
        handle.cancel()
        handle.cancel()  # double-cancel is a no-op
        await asyncio.sleep(0.05)
        assert fired == ["kept"]
        kept.cancel()  # cancel after fire is a no-op

    asyncio.run(main())


def test_negative_delay_rejected_like_the_simulator():
    async def main():
        clock = AsyncClock(asyncio.get_running_loop())
        with pytest.raises(ValueError, match="past"):
            clock.call_later(-0.1, lambda: None)
        with pytest.raises(ValueError, match="past"):
            clock.schedule(-0.1, lambda: None)

    asyncio.run(main())


def test_absolute_time_variants():
    async def main():
        clock = AsyncClock(asyncio.get_running_loop())
        fired = []
        clock.call_at(clock.now + 0.01, fired.append, "at")
        clock.schedule_at(clock.now + 0.01, fired.append, "sched_at")
        await asyncio.sleep(0.05)
        assert fired == ["at", "sched_at"]

    asyncio.run(main())
