"""Closed-form analysis of the arbitrary protocol (Sections 3.2-3.3).

All formulas take an :class:`~repro.core.tree.ArbitraryTree` and, where
relevant, the per-replica availability probability ``p`` (replicas fail
independently, Section 2.2).  Notation: ``K_phy`` the physical levels,
``m_phy_k`` their sizes, ``d``/``e`` the min/max size, ``h`` the height and
``|K_log|`` the number of logical levels, so ``|K_phy| = 1 + h - |K_log|``.

=====================  =====================================================
read cost              ``1 + h - |K_log|``                       (§3.2.1)
read availability      ``prod_k (1 - (1-p)^{m_phy_k})``          (§3.2.1)
read load              ``1 / d``                                 (§3.2.1, §6.1)
write cost (min/max)   ``d`` / ``e``                             (§3.2.2)
write cost (average)   ``n / |K_phy|``                           (§3.2.2)
write failure          ``prod_k (1 - p^{m_phy_k})``              (§3.2.2)
write availability     ``1 - write failure``                     (§3.2.2)
write load             ``1 / |K_phy|``                           (§3.2.2, §6.2)
expected read load     ``A_rd (L_rd - 1) + 1``                   (Eq. 3.2)
expected write load    ``A_wr L_wr + (1 - A_wr)``                (Eq. 3.2)
=====================  =====================================================

The asymptotic Algorithm-1 availabilities of Section 3.3 are
``lim RD_avail = (1 - (1-p)^4)^7`` and ``lim WR_avail = 1 - (1 - p^4)^7``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.tree import ArbitraryTree

#: Either one probability for every replica (the paper's model) or a
#: per-SID mapping (heterogeneous fleets).
Availability = float | Mapping[int, float]


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"availability probability must be in [0, 1], got {p}")


def _replica_probability(p: Availability, sid: int) -> float:
    value = p[sid] if isinstance(p, Mapping) else p
    _check_probability(value)
    return value


def _level_up_probabilities(
    tree: ArbitraryTree, p: Availability
) -> list[list[float]]:
    return [
        [_replica_probability(p, sid) for sid in tree.replica_ids_at(level)]
        for level in tree.physical_levels
    ]


# ----------------------------------------------------------------------
# read operation (Section 3.2.1)
# ----------------------------------------------------------------------

def read_cost(tree: ArbitraryTree) -> int:
    """Replicas contacted by a read: one per physical level.

    ``RD_cost = 1 + h - |K_log| = |K_phy|``.
    """
    return tree.num_physical_levels


def read_availability(tree: ArbitraryTree, p: Availability) -> float:
    """Probability a read quorum can be assembled.

    A read needs one live replica on *every* physical level, and replicas
    fail independently: ``prod_k (1 - prod_{i in level k} (1 - p_i))`` —
    the paper's ``prod_k (1 - (1-p)^{m_phy_k})`` when every replica shares
    one ``p``.  ``p`` may be a scalar or a per-SID mapping.
    """
    return math.prod(
        1.0 - math.prod(1.0 - value for value in level)
        for level in _level_up_probabilities(tree, p)
    )


def read_load(tree: ArbitraryTree) -> float:
    """Optimal system load of reads: ``1/d`` (proved in Appendix 6.1)."""
    return 1.0 / tree.d


# ----------------------------------------------------------------------
# write operation (Section 3.2.2)
# ----------------------------------------------------------------------

def write_cost_min(tree: ArbitraryTree) -> int:
    """Cheapest write: the thinnest physical level, ``d`` replicas."""
    return tree.d


def write_cost_max(tree: ArbitraryTree) -> int:
    """Costliest write: the widest physical level, ``e`` replicas."""
    return tree.e


def write_cost_avg(tree: ArbitraryTree) -> float:
    """Average write cost under the uniform strategy: ``n / |K_phy|``."""
    return tree.n / tree.num_physical_levels


def write_failure(tree: ArbitraryTree, p: Availability) -> float:
    """Probability *no* physical level is fully live.

    ``WR_fail = prod_k (1 - prod_{i in level k} p_i)`` — a write needs at
    least one level whose replicas are all up.  Scalar ``p`` recovers the
    paper's ``prod_k (1 - p^{m_phy_k})``.
    """
    return math.prod(
        1.0 - math.prod(level)
        for level in _level_up_probabilities(tree, p)
    )


def write_availability(tree: ArbitraryTree, p: Availability) -> float:
    """``WR_availability = 1 - WR_fail`` (Section 3.2.2)."""
    return 1.0 - write_failure(tree, p)


def write_load(tree: ArbitraryTree) -> float:
    """Optimal system load of writes: ``1/|K_phy|`` (Appendix 6.2)."""
    return 1.0 / tree.num_physical_levels


# ----------------------------------------------------------------------
# expected loads (Equation 3.2) and stability
# ----------------------------------------------------------------------

def expected_read_load(tree: ArbitraryTree, p: Availability) -> float:
    """``E[L_RD] = RD_avail * (L_RD - 1) + 1`` (Equation 3.2).

    As failures accumulate a read degenerates towards hitting the single
    surviving replica of some level, so the expectation interpolates between
    the optimal load (fully available) and 1 (barely available).
    """
    availability = read_availability(tree, p)
    return availability * (read_load(tree) - 1.0) + 1.0


def expected_write_load(tree: ArbitraryTree, p: Availability) -> float:
    """``E[L_WR] = WR_avail * L_WR + WR_fail * 1`` (Equation 3.2)."""
    availability = write_availability(tree, p)
    return availability * write_load(tree) + (1.0 - availability) * 1.0


def is_stable(
    tree: ArbitraryTree, p: float, tolerance: float = 0.05
) -> tuple[bool, bool]:
    """Section 3.2.3 stability: expected load close to the optimal load.

    Returns ``(read_stable, write_stable)`` — whether the expected load of
    each operation is within ``tolerance`` of its optimal system load.
    """
    read_stable = expected_read_load(tree, p) - read_load(tree) <= tolerance
    write_stable = expected_write_load(tree, p) - write_load(tree) <= tolerance
    return read_stable, write_stable


# ----------------------------------------------------------------------
# Algorithm 1 asymptotics (Section 3.3)
# ----------------------------------------------------------------------

def limit_read_availability(p: float) -> float:
    """``lim_{n->inf} RD_avail`` for Algorithm-1 trees: ``(1-(1-p)^4)^7``.

    As ``n`` grows the tail levels become wide enough that only the seven
    four-replica head levels limit read availability.
    """
    _check_probability(p)
    return (1.0 - (1.0 - p) ** 4) ** 7


def limit_write_availability(p: float) -> float:
    """``lim_{n->inf} WR_avail`` for Algorithm-1 trees: ``1-(1-p^4)^7``.

    In the limit a write can only rely on the seven four-replica head
    levels; wide tail levels almost surely contain a failed replica.
    """
    _check_probability(p)
    return 1.0 - (1.0 - p**4) ** 7


# ----------------------------------------------------------------------
# one-call summary
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TreeMetrics:
    """All closed-form quantities of Sections 3.2-3.3 for one tree."""

    spec: str
    n: int
    height: int
    num_physical_levels: int
    num_logical_levels: int
    d: int
    e: int
    num_read_quorums: int
    num_write_quorums: int
    read_cost: int
    write_cost_min: int
    write_cost_max: int
    write_cost_avg: float
    read_load: float
    write_load: float
    p: float
    read_availability: float
    write_availability: float
    expected_read_load: float
    expected_write_load: float


def analyse(tree: ArbitraryTree, p: float = 0.9) -> TreeMetrics:
    """Evaluate every Section 3.2-3.3 formula for one tree at one ``p``."""
    return TreeMetrics(
        spec=tree.spec(),
        n=tree.n,
        height=tree.height,
        num_physical_levels=tree.num_physical_levels,
        num_logical_levels=tree.num_logical_levels,
        d=tree.d,
        e=tree.e,
        num_read_quorums=math.prod(tree.physical_level_sizes),
        num_write_quorums=tree.num_physical_levels,
        read_cost=read_cost(tree),
        write_cost_min=write_cost_min(tree),
        write_cost_max=write_cost_max(tree),
        write_cost_avg=write_cost_avg(tree),
        read_load=read_load(tree),
        write_load=write_load(tree),
        p=p,
        read_availability=read_availability(tree, p),
        write_availability=write_availability(tree, p),
        expected_read_load=expected_read_load(tree, p),
        expected_write_load=expected_write_load(tree, p),
    )
