"""Structured tracing and metrics for the simulator (``repro.obs``).

The observability layer that makes measurement bugs impossible to miss:
every simulated operation becomes a *trace* — a tree of typed spans for
lock waits, quorum attempts, protocol phases, deferrals and timeout/retry
events — while the network and lock manager feed per-message-type counters
and wait/hold metrics into the same recorder.  Traces export as JSON Lines
and render as per-phase latency breakdowns and flame summaries.

The default recorder is a no-op (:data:`NULL_RECORDER`): with tracing off
the instrumented hot paths cost a single attribute check, so the simulator
keeps its uninstrumented speed (asserted by
``benchmarks/bench_obs_overhead.py``).
"""

from repro.obs.export import export_trace, load_trace, summaries_of, trace_records
from repro.obs.recorder import NULL_RECORDER, NullRecorder, TraceRecorder
from repro.obs.report import (
    PhaseStat,
    flame_summary,
    phase_breakdown,
    phase_histograms,
    render_counters,
    render_phase_breakdown,
    render_trace,
)
from repro.obs.spans import STATUS_OK, Span, SpanKind
from repro.obs.stats import Histogram, linear_percentile

__all__ = [
    "Histogram",
    "NULL_RECORDER",
    "NullRecorder",
    "PhaseStat",
    "STATUS_OK",
    "Span",
    "SpanKind",
    "TraceRecorder",
    "export_trace",
    "flame_summary",
    "linear_percentile",
    "load_trace",
    "phase_breakdown",
    "phase_histograms",
    "render_counters",
    "render_phase_breakdown",
    "render_trace",
    "summaries_of",
    "trace_records",
]
