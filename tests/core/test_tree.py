"""Unit tests for the arbitrary tree structure (Section 3.1)."""

import pytest

from repro.core.builder import from_spec
from repro.core.tree import (
    ArbitraryTree,
    AssumptionViolation,
    NodeKind,
    TreeNode,
    physical_level_partition,
    total_replicas,
)


@pytest.fixture
def paper_tree():
    """The exact Figure 1 tree, including the 4 logical level-2 nodes."""
    return ArbitraryTree.from_level_counts([0, 3, 5], [1, 0, 4])


class TestConstruction:
    def test_level_counts(self, paper_tree):
        assert paper_tree.m(0) == 1
        assert paper_tree.m(1) == 3
        assert paper_tree.m(2) == 9

    def test_physical_counts(self, paper_tree):
        assert [paper_tree.m_phy(k) for k in range(3)] == [0, 3, 5]

    def test_logical_counts(self, paper_tree):
        assert [paper_tree.m_log(k) for k in range(3)] == [1, 0, 4]

    def test_n_counts_physical_nodes_only(self, paper_tree):
        assert paper_tree.n == 8

    def test_height(self, paper_tree):
        assert paper_tree.height == 2

    def test_root(self, paper_tree):
        assert paper_tree.root.is_logical
        assert paper_tree.root.level == 0
        assert paper_tree.root.parent is None

    def test_mismatched_count_vectors_rejected(self):
        with pytest.raises(ValueError, match="differ in length"):
            ArbitraryTree.from_level_counts([0, 3], [1])

    def test_empty_level_rejected(self):
        with pytest.raises(ValueError, match="no nodes"):
            ArbitraryTree.from_level_counts([0, 0], [1, 0])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ArbitraryTree.from_level_counts([0, -1], [1, 2])

    def test_multi_node_root_rejected(self):
        with pytest.raises(ValueError, match="root"):
            ArbitraryTree.from_level_counts([2], [0])


class TestNodeIndexing:
    def test_s_i_k_indexing_is_one_based(self, paper_tree):
        node = paper_tree.node(1, 1)
        assert node.index == 1 and node.level == 1

    def test_physical_before_logical_within_level(self, paper_tree):
        kinds = [node.kind for node in paper_tree.levels[2]]
        assert kinds[:5] == [NodeKind.PHYSICAL] * 5
        assert kinds[5:] == [NodeKind.LOGICAL] * 4

    def test_replica_ids_assigned_in_level_order(self, paper_tree):
        assert paper_tree.replica_ids_at(1) == (0, 1, 2)
        assert paper_tree.replica_ids_at(2) == (3, 4, 5, 6, 7)

    def test_logical_nodes_have_no_replica_id(self, paper_tree):
        assert paper_tree.root.replica_id is None

    def test_level_of_replica(self, paper_tree):
        assert paper_tree.level_of_replica(0) == 1
        assert paper_tree.level_of_replica(7) == 2
        with pytest.raises(KeyError):
            paper_tree.level_of_replica(99)

    def test_parent_child_wiring(self, paper_tree):
        for level in paper_tree.levels[1:]:
            for node in level:
                assert node.parent is not None
                assert node in node.parent.children

    def test_descendant_counts(self, paper_tree):
        root = paper_tree.root
        assert root.descendant_count() == 3
        total_level2 = sum(
            node.descendant_count() for node in paper_tree.levels[1]
        )
        assert total_level2 == 9

    def test_descendant_kind_split(self, paper_tree):
        for node in paper_tree.levels[1]:
            assert node.descendant_count() == (
                node.physical_descendant_count()
                + node.logical_descendant_count()
            )

    def test_leaves_have_no_children(self, paper_tree):
        for node in paper_tree.levels[2]:
            assert node.is_leaf


class TestPaperNotation:
    def test_k_phy(self, paper_tree):
        assert paper_tree.physical_levels == (1, 2)

    def test_k_log(self, paper_tree):
        assert paper_tree.logical_levels == (0,)

    def test_level_count_identity(self, paper_tree):
        """|K_log| + |K_phy| = 1 + h."""
        assert (
            paper_tree.num_logical_levels + paper_tree.num_physical_levels
            == 1 + paper_tree.height
        )

    def test_d_and_e(self, paper_tree):
        assert paper_tree.d == 3
        assert paper_tree.e == 5

    def test_physical_level_sizes(self, paper_tree):
        assert paper_tree.physical_level_sizes == (3, 5)

    def test_level_table_matches_table1(self, paper_tree):
        rows = paper_tree.level_table()
        assert [(r.total, r.physical, r.logical) for r in rows] == [
            (1, 0, 1), (3, 3, 0), (9, 5, 4),
        ]

    def test_spec_rendering(self, paper_tree):
        assert paper_tree.spec() == "1-3-5"

    def test_spec_physical_root(self):
        tree = ArbitraryTree.from_level_counts([1, 2, 4])
        assert tree.spec() == "P1-2-4"

    def test_describe_mentions_levels(self, paper_tree):
        text = paper_tree.describe()
        assert "level 0" in text and "level 2" in text

    def test_repr(self, paper_tree):
        assert "1-3-5" in repr(paper_tree)


class TestAssumption31:
    def test_non_decreasing_ok(self):
        assert from_spec("1-2-2-5").satisfies_assumption()

    def test_decreasing_rejected(self):
        with pytest.raises(AssumptionViolation, match="non-decreasing"):
            ArbitraryTree.from_level_counts([0, 5, 3], [1, 0, 0])

    def test_physical_root_must_be_strictly_smaller(self):
        with pytest.raises(AssumptionViolation, match="strictly smaller"):
            ArbitraryTree.from_level_counts([1, 1])

    def test_interior_logical_level_rejected(self):
        with pytest.raises(AssumptionViolation, match="between physical"):
            ArbitraryTree.from_level_counts([0, 2, 0, 2], [1, 0, 1, 0])

    def test_validation_can_be_disabled(self):
        tree = ArbitraryTree.from_level_counts(
            [0, 5, 3], [1, 0, 0], validate_assumption=False
        )
        assert not tree.satisfies_assumption()

    def test_single_level_always_ok(self):
        assert from_spec("1-7").satisfies_assumption()


class TestIterationHelpers:
    def test_nodes_in_level_order(self, paper_tree):
        nodes = list(paper_tree.nodes())
        assert len(nodes) == 13  # 1 + 3 + 9
        assert [n.level for n in nodes] == sorted(n.level for n in nodes)

    def test_physical_nodes_in_sid_order(self, paper_tree):
        sids = [node.replica_id for node in paper_tree.physical_nodes()]
        assert sids == list(range(8))

    def test_physical_nodes_at(self, paper_tree):
        assert len(paper_tree.physical_nodes_at(2)) == 5
        assert len(paper_tree.physical_nodes_at(0)) == 0

    def test_replica_ids(self, paper_tree):
        assert paper_tree.replica_ids() == tuple(range(8))

    def test_physical_level_partition(self, paper_tree):
        partition = physical_level_partition(paper_tree)
        assert partition == [(0, 1, 2), (3, 4, 5, 6, 7)]

    def test_total_replicas(self):
        assert total_replicas([3, 5]) == 8


class TestTreeNode:
    def test_repr_physical(self):
        node = TreeNode(level=1, index=2, kind=NodeKind.PHYSICAL, replica_id=4)
        assert "phy" in repr(node) and "sid=4" in repr(node)

    def test_repr_logical(self):
        node = TreeNode(level=0, index=1, kind=NodeKind.LOGICAL)
        assert "log" in repr(node)

    def test_kind_predicates(self):
        physical = TreeNode(level=0, index=1, kind=NodeKind.PHYSICAL)
        assert physical.is_physical and not physical.is_logical


class TestSidOrder:
    """``sid_order`` permutes which SID lands on which level slot."""

    def test_default_is_level_order(self):
        tree = ArbitraryTree.from_level_counts([0, 3, 5], [1, 0, 0])
        assert tree.replica_ids() == tuple(range(8))

    def test_permutation_places_sids_in_level_order(self):
        order = (7, 6, 5, 4, 3, 2, 1, 0)
        tree = ArbitraryTree.from_level_counts(
            [0, 3, 5], [1, 0, 0], sid_order=order
        )
        level1 = [node.replica_id for node in tree.physical_nodes_at(1)]
        level2 = [node.replica_id for node in tree.physical_nodes_at(2)]
        assert level1 == [7, 6, 5]
        assert level2 == [4, 3, 2, 1, 0]
        # the universe is unchanged — only placement moved
        assert sorted(tree.replica_ids()) == list(range(8))

    def test_non_permutation_rejected(self):
        with pytest.raises(ValueError, match="permutation"):
            ArbitraryTree.from_level_counts(
                [0, 3, 5], [1, 0, 0], sid_order=(0, 1, 2, 3, 4, 5, 6, 6)
            )
        with pytest.raises(ValueError, match="permutation"):
            ArbitraryTree.from_level_counts(
                [0, 3, 5], [1, 0, 0], sid_order=(1, 2, 3)
            )

    def test_spec_round_trip_ignores_placement(self):
        """The compressed spec describes shape only, not SID placement."""
        plain = from_spec("1-3-5")
        shuffled = ArbitraryTree.from_level_counts(
            [0, 3, 5], [1, 0, 0], sid_order=(3, 4, 5, 0, 1, 2, 6, 7)
        )
        assert shuffled.spec() == plain.spec()
