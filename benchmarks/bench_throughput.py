"""End-to-end simulated throughput: batching and read leases vs the baseline.

The shard-capacity bench (``bench_shard_capacity.py``) established two
ceilings on the paper's protocol: a single replica group saturates at its
quorum-service capacity, and at Zipf s >= 1.1 the hottest key's lock
serialises the stream no matter how many shards are added.  This bench
measures the two hot-path features built to attack those ceilings on one
saturated 1-3-5 replica group under a 90/10 read-heavy Zipf stream:

* **feature matrix** — the same workload under ``{batching off/on} x
  {leases off/on}``, recording simulated ops/sec (operations divided by
  the simulated drain time), read/write latency percentiles, message
  counts and lease counters.  Acceptance: batching+leases reaches at
  least **2x** the unbatched ops/sec, and batching alone never loses to
  the unbatched baseline (the CI smoke gate).
* **hot-key sweep** — Zipf s in {0.9, 1.1, 1.3} with leases off vs on.
  With leases off, s >= 1.1 shows the lock-convoy ceiling: read p99 is
  queueing-dominated because every read of the hottest key re-runs a
  quorum round behind the key's writers.  With leases on, hot reads are
  served from the write-through lease at shared-lock grant, so read p99
  collapses to (near) round-trip latency.

Every number is simulated time from a seeded run — bit-stable across
hosts, so the recorded JSON is a regression baseline, not a noisy timing.

Two tiers:

* ``--smoke`` (and the pytest test, used by the CI throughput job): a
  short stream, finishes in seconds, still saturated;
* the default full run records the trajectory cited in EXPERIMENTS.md
  and asserts the 2x acceptance floor.

Run directly::

    PYTHONPATH=src python benchmarks/bench_throughput.py [--smoke] [--out P]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

try:
    from benchmarks.perf_harness import write_bench_json
except ImportError:  # direct `python benchmarks/bench_throughput.py`
    sys.path.insert(0, str(Path(__file__).parent))
    from perf_harness import write_bench_json

from repro.core.builder import from_spec
from repro.sim.engine import SimulationConfig, simulate
from repro.sim.workload import WorkloadSpec

#: Aggregate open-loop arrival rate (ops per simulated time unit) — well
#: past one 1-3-5 group's service capacity, so throughput measures the
#: capacity the features buy back, not the arrival process.
RATE = 4.0

#: Per-message replica processing time — the resource that runs out.
SERVICE_TIME = 1.0

#: The batching window: at RATE, roughly eight operations share a window.
BATCH_WINDOW = 2.0

#: 90/10 read-heavy (the acceptance workload).
READ_FRACTION = 0.9

ZIPF_S = 1.1
KEYS = 128
SEED = 2026

MATRIX = (
    ("unbatched", 0.0, False),
    ("batched", BATCH_WINDOW, False),
    ("leased", 0.0, True),
    ("batched+leased", BATCH_WINDOW, True),
)


def _config(
    operations: int,
    batch_window: float,
    leases: bool,
    zipf_s: float = ZIPF_S,
) -> SimulationConfig:
    return SimulationConfig(
        tree=from_spec("1-3-5"),
        workload=WorkloadSpec(
            operations=operations,
            read_fraction=READ_FRACTION,
            keys=KEYS,
            arrival="poisson",
            rate=RATE,
            zipf_s=zipf_s,
        ),
        clients=4,
        service_time=SERVICE_TIME,
        timeout=800.0,  # queueing delay must not read as failure
        seed=SEED,
        batch_window=batch_window,
        leases=leases,
    )


def _point(case: str, config: SimulationConfig) -> dict:
    started = time.perf_counter()
    result = simulate(config)
    wall = time.perf_counter() - started
    summary = result.summary()
    operations = summary["reads"] + summary["writes"]
    duration = summary["duration"]
    point = {
        "case": case,
        "batch_window": config.batch_window,
        "leases": config.leases,
        "zipf_s": config.workload.zipf_s,
        "ops_per_sec": round(operations / duration, 4),
        "duration": round(duration, 2),
        "read_p50": round(result.monitor.reads.latency_percentile(0.5), 3),
        "read_p99": round(result.monitor.reads.latency_percentile(0.99), 3),
        "write_p99": round(result.monitor.writes.latency_percentile(0.99), 3),
        "read_availability": round(summary["read_availability"], 4),
        "write_availability": round(summary["write_availability"], 4),
        "messages_sent": summary["messages_sent"],
        "wall_seconds": round(wall, 3),
    }
    if result.leases is not None:
        lease_summary = result.leases.summary()
        point["lease_hit_rate"] = round(lease_summary["hit_rate"], 4)
        point["lease_invalidations"] = lease_summary["invalidations"]
    return point


def feature_matrix(operations: int) -> list[dict]:
    points = []
    for case, window, leases in MATRIX:
        point = _point(
            f"throughput/{case}", _config(operations, window, leases)
        )
        points.append(point)
        hit = point.get("lease_hit_rate")
        print(
            f"{case:>16}  ops/sec {point['ops_per_sec']:>7.4f}  "
            f"rd p99 {point['read_p99']:>8.2f}  "
            f"msgs {point['messages_sent']:>8.0f}"
            + (f"  lease hit {hit:.2f}" if hit is not None else "")
        )
    return points


def hot_key_sweep(operations: int) -> list[dict]:
    points = []
    for zipf_s in (0.9, 1.1, 1.3):
        for leases in (False, True):
            label = "on" if leases else "off"
            point = _point(
                f"hot_key/zipf={zipf_s}/leases={label}",
                _config(operations, 0.0, leases, zipf_s=zipf_s),
            )
            points.append(point)
            print(
                f"zipf={zipf_s} leases={label:>3}  "
                f"ops/sec {point['ops_per_sec']:>7.4f}  "
                f"rd p99 {point['read_p99']:>8.2f}"
            )
    return points


def run(smoke: bool, out: str | None = None) -> dict:
    operations = 1200 if smoke else 4000
    matrix = feature_matrix(operations)
    sweep = hot_key_sweep(operations)
    by_case = {point["case"]: point for point in matrix}
    unbatched = by_case["throughput/unbatched"]["ops_per_sec"]
    combined = by_case["throughput/batched+leased"]["ops_per_sec"]
    sweep_11 = {
        point["case"]: point for point in sweep if point["zipf_s"] == 1.1
    }
    summary = {
        "ops_per_sec_unbatched": unbatched,
        "ops_per_sec_batched": by_case["throughput/batched"]["ops_per_sec"],
        "ops_per_sec_leased": by_case["throughput/leased"]["ops_per_sec"],
        "ops_per_sec_batched_leased": combined,
        "combined_speedup": round(combined / unbatched, 2),
        "zipf11_read_p99_unleased": sweep_11["hot_key/zipf=1.1/leases=off"][
            "read_p99"
        ],
        "zipf11_read_p99_leased": sweep_11["hot_key/zipf=1.1/leases=on"][
            "read_p99"
        ],
    }
    bench = "throughput_smoke" if smoke and out else "throughput"
    path = write_bench_json(bench, matrix + sweep, summary, out=out)
    print(f"\nwrote {path}")
    print(f"summary: {summary}")
    # CI smoke gate: batching must never lose to the unbatched baseline.
    assert (
        summary["ops_per_sec_batched"] >= summary["ops_per_sec_unbatched"]
    ), "batching lost throughput vs the unbatched baseline"
    # Leases must break the s=1.1 hot-key lock convoy, not just shave it.
    assert (
        summary["zipf11_read_p99_leased"]
        < 0.5 * summary["zipf11_read_p99_unleased"]
    ), "leases did not collapse the hot-key read tail"
    if not smoke:
        # The acceptance floor on the full workload.
        assert summary["combined_speedup"] >= 2.0, (
            f"batching+leases reached only "
            f"{summary['combined_speedup']}x unbatched ops/sec"
        )
    return summary


def test_throughput_perf_smoke(emit):
    """CI smoke: feature matrix + hot-key sweep on the short stream.

    Writes to a ``_smoke`` JSON so a local pytest run never clobbers the
    recorded full-run trajectory in ``BENCH_throughput.json``.
    """
    from benchmarks.perf_harness import RESULTS_DIR

    summary = run(
        smoke=True, out=str(RESULTS_DIR / "BENCH_throughput_smoke.json")
    )
    emit(
        "throughput_smoke",
        "throughput smoke: "
        f"{summary['ops_per_sec_unbatched']:.2f} -> "
        f"{summary['ops_per_sec_batched_leased']:.2f} ops/sec "
        f"({summary['combined_speedup']:.1f}x) batched+leased, "
        f"zipf 1.1 read p99 {summary['zipf11_read_p99_unleased']:.0f} -> "
        f"{summary['zipf11_read_p99_leased']:.0f}",
    )
    assert summary["ops_per_sec_batched"] >= summary["ops_per_sec_unbatched"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="short stream only (CI throughput-job tier)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default benchmarks/results/BENCH_throughput.json)",
    )
    args = parser.parse_args()
    run(smoke=args.smoke, out=args.out)
