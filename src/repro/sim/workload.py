"""Client workload generation.

A :class:`Workload` issues a stream of read/write operations against a
coordinator: the read/write mix, arrival process and key popularity are all
configurable.  The workload is the empirical counterpart of the paper's
"frequencies of read and write operations" that drive tree configuration.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

from collections.abc import Sequence

from repro.sim.coordinator import OperationOutcome, QuorumCoordinator
from repro.sim.events import Scheduler


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of a workload.

    Attributes
    ----------
    operations:
        Total number of operations to issue.
    read_fraction:
        Probability each operation is a read (the paper's read frequency).
    keys:
        Size of the key space (keys are ``"k0" .. f"k{keys-1}"``).
    arrival:
        ``"closed"`` — issue the next operation when the previous one
        finishes (one outstanding op; cleanest for load measurement), or
        ``"poisson"`` — open-loop Poisson arrivals at ``rate`` ops per time
        unit (exercises locking and concurrency).
    rate:
        Arrival rate for the Poisson process.
    zipf_s:
        Zipf skew for key popularity; 0 means uniform.
    """

    operations: int = 1000
    read_fraction: float = 0.5
    keys: int = 16
    arrival: str = "closed"
    rate: float = 1.0
    zipf_s: float = 0.0

    def __post_init__(self) -> None:
        if self.operations < 0:
            raise ValueError("operations must be non-negative")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.keys < 1:
            raise ValueError("need at least one key")
        if self.arrival not in ("closed", "poisson"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if self.arrival == "poisson" and self.rate <= 0:
            raise ValueError("poisson arrivals need a positive rate")
        if self.zipf_s < 0:
            raise ValueError("zipf skew must be non-negative")


class Workload:
    """Drives a coordinator according to a :class:`WorkloadSpec`."""

    def __init__(
        self,
        spec: WorkloadSpec,
        coordinator: QuorumCoordinator | Sequence[QuorumCoordinator],
        scheduler: Scheduler,
        rng: random.Random,
        on_outcome: Callable[[OperationOutcome], None],
        on_complete: Callable[[], None] | None = None,
    ) -> None:
        self._spec = spec
        if isinstance(coordinator, QuorumCoordinator):
            self._coordinators: tuple[QuorumCoordinator, ...] = (coordinator,)
        else:
            self._coordinators = tuple(coordinator)
            if not self._coordinators:
                raise ValueError("need at least one coordinator")
        self._scheduler = scheduler
        self._rng = rng
        self._on_outcome = on_outcome
        self._on_complete = on_complete
        self._issued = 0
        self._completed = 0
        self._next_value = 0
        self._key_weights = self._build_key_weights()

    def _build_key_weights(self) -> list[float] | None:
        if self._spec.zipf_s == 0.0:
            return None
        return [
            1.0 / (rank**self._spec.zipf_s)
            for rank in range(1, self._spec.keys + 1)
        ]

    def _pick_key(self) -> str:
        if self._key_weights is None:
            index = self._rng.randrange(self._spec.keys)
        else:
            (index,) = self._rng.choices(
                range(self._spec.keys), weights=self._key_weights
            )
        return f"k{index}"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin issuing operations."""
        if self._spec.operations == 0:
            self._maybe_complete()
            return
        if self._spec.arrival == "closed":
            self._issue_one()
        else:
            self._schedule_poisson_arrivals()

    def _schedule_poisson_arrivals(self) -> None:
        at = 0.0
        for _ in range(self._spec.operations):
            at += self._rng.expovariate(self._spec.rate)
            self._scheduler.schedule(at, self._issue_one)

    def _issue_one(self) -> None:
        if self._issued >= self._spec.operations:
            return
        coordinator = self._coordinators[self._issued % len(self._coordinators)]
        self._issued += 1
        key = self._pick_key()
        if self._rng.random() < self._spec.read_fraction:
            coordinator.read(key, self._op_done)
        else:
            value = f"v{self._next_value}"
            self._next_value += 1
            coordinator.write(key, value, self._op_done)

    def _op_done(self, outcome: OperationOutcome) -> None:
        self._completed += 1
        self._on_outcome(outcome)
        if self._spec.arrival == "closed" and self._issued < self._spec.operations:
            self._issue_one()
        self._maybe_complete()

    def _maybe_complete(self) -> None:
        if self._completed >= self._spec.operations and self._on_complete:
            callback, self._on_complete = self._on_complete, None
            callback()

    @property
    def coordinators(self) -> tuple[QuorumCoordinator, ...]:
        """The coordinators operations are round-robined over."""
        return self._coordinators

    @property
    def issued(self) -> int:
        """Operations issued so far."""
        return self._issued

    @property
    def completed(self) -> int:
        """Operations whose outcome has been reported."""
        return self._completed
