"""Figure 3: (expected) system loads of read operations.

Regenerates the read-load and expected-read-load series of Figure 3 at the
paper's p = 0.7 and asserts its Section 4.2.1 observations:

* MOSTLY-READ has the lowest read load (1/n), stable, shrinking with n;
* MOSTLY-WRITE sits at 1/2 regardless of n and is unstable (expected load
  drifts towards 1);
* UNMODIFIED is the worst of all six: load 1 (every read goes through the
  root level);
* HQC has the least load of the first four (n^-0.37) and the least
  expected load for n > 15;
* ARBITRARY's load settles at 1/4 once n > 32, comparable with BINARY's
  2/(log2(n+1)+1).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.sweeps import figure3_series
from repro.analysis.tables import format_series
from repro.core.config import Configuration

SIZES = (15, 31, 63, 127, 255, 511)
FIRST_FOUR = (
    Configuration.BINARY,
    Configuration.HQC,
    Configuration.UNMODIFIED,
    Configuration.ARBITRARY,
)


@pytest.fixture(scope="module")
def series():
    return figure3_series(sizes=SIZES)


def _values(series, config, quantity):
    return {
        point.requested_n: point.value
        for point in series.series[config][quantity]
    }


def _actual_n(series, config):
    return {
        point.requested_n: point.actual_n
        for point in series.series[config]["read_load"]
    }


def test_figure3_tables(series, emit, benchmark):
    benchmark(figure3_series, SIZES)
    emit(
        "fig3_read_loads",
        format_series(series, "read_load", title="Figure 3: read system load"),
    )
    emit(
        "fig3_expected_read_loads",
        format_series(
            series, "expected_read_load",
            title="Figure 3: expected read system load (p = 0.7)",
        ),
    )


def test_mostly_read_is_lowest_and_stable(series, benchmark):
    load = benchmark(_values, series, Configuration.MOSTLY_READ, "read_load")
    expected = _values(series, Configuration.MOSTLY_READ, "expected_read_load")
    previous = 1.0
    for n in SIZES:
        assert load[n] == pytest.approx(1.0 / n)
        for config in Configuration:
            assert load[n] <= _values(series, config, "read_load")[n] + 1e-12
        # stability: expected load stays essentially at the optimal load
        assert expected[n] - load[n] < 1e-6
        assert load[n] < previous
        previous = load[n]


def test_mostly_write_is_half_and_unstable(series, benchmark):
    load = benchmark(_values, series, Configuration.MOSTLY_WRITE, "read_load")
    expected = _values(series, Configuration.MOSTLY_WRITE, "expected_read_load")
    previous = 0.0
    for n in SIZES:
        assert load[n] == pytest.approx(0.5)
        # instability: with ~n/2 two-replica levels the read availability
        # collapses, so the expected load grows with n towards 1
        assert expected[n] >= previous - 1e-9
        previous = expected[n]
        if n >= 63:
            assert expected[n] > 0.9


def test_unmodified_has_load_one(series, benchmark):
    load = benchmark(_values, series, Configuration.UNMODIFIED, "read_load")
    expected = _values(series, Configuration.UNMODIFIED, "expected_read_load")
    for n in SIZES:
        assert load[n] == pytest.approx(1.0)  # the root is in every quorum
        assert expected[n] == pytest.approx(1.0)
        for config in Configuration:
            assert load[n] >= _values(series, config, "read_load")[n] - 1e-12


def test_hqc_least_of_first_four(series, benchmark):
    load = benchmark(_values, series, Configuration.HQC, "read_load")
    expected = _values(series, Configuration.HQC, "expected_read_load")
    actual_n = _actual_n(series, Configuration.HQC)
    for n in SIZES:
        assert load[n] == pytest.approx(actual_n[n] ** (math.log(2, 3) - 1), rel=1e-9)
        # HQC's n^-0.37 dips below ARBITRARY's constant 1/4 once n > 42;
        # against BINARY and UNMODIFIED it wins from n > 15 as the paper says.
        competitors = (
            FIRST_FOUR if n >= 63
            else (Configuration.BINARY, Configuration.UNMODIFIED)
        )
        if n > 15:
            for config in competitors:
                assert load[n] <= _values(series, config, "read_load")[n] + 1e-9
                assert (
                    expected[n]
                    <= _values(series, config, "expected_read_load")[n] + 1e-9
                )


def test_arbitrary_settles_at_quarter(series, benchmark):
    load = benchmark(_values, series, Configuration.ARBITRARY, "read_load")
    for n in SIZES:
        if n > 32:
            assert load[n] == pytest.approx(0.25)


def test_binary_load_formula(series, benchmark):
    load = benchmark(_values, series, Configuration.BINARY, "read_load")
    actual_n = _actual_n(series, Configuration.BINARY)
    for n in SIZES:
        assert load[n] == pytest.approx(2.0 / (math.log2(actual_n[n] + 1) + 1))
