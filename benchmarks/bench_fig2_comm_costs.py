"""Figure 2: read and write communication costs of the six configurations.

Regenerates both panels of Figure 2 as text series (rows = system size n,
columns = configurations) and asserts the qualitative shape the paper
describes in Section 4.1:

* MOSTLY-READ has the lowest read cost (1) and the worst write cost (n);
* MOSTLY-WRITE has the highest read cost (~(n-1)/2) and the lowest write
  cost (2);
* among the first four configurations BINARY has the highest costs;
* ARBITRARY has the lowest write cost of the first four;
* UNMODIFIED has the least read cost (log2(n+1)) of the first four, and a
  write cost comparable to ARBITRARY for n < 200.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.sweeps import figure2_series
from repro.analysis.tables import format_series
from repro.core.config import Configuration

SIZES = (15, 31, 63, 127, 255, 511)
FIRST_FOUR = (
    Configuration.BINARY,
    Configuration.HQC,
    Configuration.UNMODIFIED,
    Configuration.ARBITRARY,
)


@pytest.fixture(scope="module")
def series():
    return figure2_series(sizes=SIZES)


def _values(series, config, quantity):
    return {
        point.requested_n: point.value
        for point in series.series[config][quantity]
    }


def test_figure2_tables(series, emit, benchmark):
    benchmark(figure2_series, SIZES)
    emit(
        "fig2_read_costs",
        format_series(series, "read_cost", title="Figure 2 (reads): communication cost"),
    )
    emit(
        "fig2_write_costs",
        format_series(series, "write_cost", title="Figure 2 (writes): communication cost"),
    )


def test_mostly_read_extremes(series, benchmark):
    read = benchmark(_values, series, Configuration.MOSTLY_READ, "read_cost")
    write = _values(series, Configuration.MOSTLY_READ, "write_cost")
    for n in SIZES:
        assert read[n] == 1.0  # lowest possible read cost
        assert write[n] == float(n)  # worst write cost: all replicas
        for config in Configuration:
            assert write[n] >= _values(series, config, "write_cost")[n]


def test_mostly_write_extremes(series, benchmark):
    read = benchmark(_values, series, Configuration.MOSTLY_WRITE, "read_cost")
    write = _values(series, Configuration.MOSTLY_WRITE, "write_cost")
    for n in SIZES:
        # one replica per level on ~n/2 levels -> highest read cost
        assert read[n] == max(
            _values(series, config, "read_cost")[n] for config in Configuration
        )
        # two replicas per write (the odd leftover makes it slightly over 2)
        assert write[n] == pytest.approx(2.0, abs=0.2)


def test_binary_has_highest_cost_of_first_four(series, benchmark):
    binary_read = benchmark(_values, series, Configuration.BINARY, "read_cost")
    binary_write = _values(series, Configuration.BINARY, "write_cost")
    for n in SIZES:
        if n < 15:
            continue  # tiny trees are degenerate
        for config in FIRST_FOUR:
            assert binary_read[n] >= _values(series, config, "read_cost")[n] - 1e-9
            assert binary_write[n] >= _values(series, config, "write_cost")[n] - 1e-9


def test_arbitrary_write_cost_lowest_of_first_four(series, benchmark):
    arbitrary = benchmark(_values, series, Configuration.ARBITRARY, "write_cost")
    for n in SIZES:
        if n < 31:
            # Below the Algorithm-1 regime the fallback tree has few levels
            # and UNMODIFIED/HQC can be cheaper; the paper's figures start
            # higher up.
            continue
        for config in FIRST_FOUR:
            assert arbitrary[n] <= _values(series, config, "write_cost")[n] + 1e-9


def test_unmodified_read_cost_is_log(series, benchmark):
    unmodified = benchmark(_values, series, Configuration.UNMODIFIED, "read_cost")
    for n in SIZES:
        snapped = min(
            (2 ** (h + 1) - 1 for h in range(1, 12)),
            key=lambda candidate: abs(candidate - n),
        )
        assert unmodified[n] == pytest.approx(math.log2(snapped + 1))
        if n < 31:
            continue  # tiny ARBITRARY trees have fewer levels than log2(n)
        for config in FIRST_FOUR:
            assert unmodified[n] <= _values(series, config, "read_cost")[n] + 1e-9


def test_arbitrary_costs_are_about_sqrt_n(series, benchmark):
    read = benchmark(_values, series, Configuration.ARBITRARY, "read_cost")
    write = _values(series, Configuration.ARBITRARY, "write_cost")
    for n in SIZES:
        if n <= 64:
            continue
        assert read[n] == pytest.approx(math.sqrt(n), rel=0.2)
        assert write[n] == pytest.approx(math.sqrt(n), rel=0.2)
