"""Shared liveness-oracle utilities for failure-aware quorum selection.

Every quorum constructor in this library answers the same question while it
assembles a quorum: *is replica ``sid`` currently live?*  Callers express
liveness either as an explicit collection of live SIDs (convenient in tests
and analyses) or as a predicate (the simulator's failure detector).  This
module normalises between the two so the per-protocol selectors and the
:class:`~repro.quorums.system.QuorumSystem` layer share one implementation
instead of each carrying a private copy.
"""

from __future__ import annotations

from collections.abc import Callable, Collection, Iterable

#: A perfect failure detector: ``oracle(sid)`` is True iff ``sid`` is live.
LivenessOracle = Callable[[int], bool]

#: What callers may pass wherever liveness is consulted.
Liveness = Collection[int] | LivenessOracle

#: The always-live oracle (used to sample quorums in the failure-free case).
ALL_LIVE: LivenessOracle = lambda sid: True  # noqa: E731


def as_oracle(live: Liveness) -> LivenessOracle:
    """Accept either a set of live SIDs or a predicate on SIDs."""
    if callable(live):
        return live
    live_set = frozenset(live)
    return lambda sid: sid in live_set


def live_members(members: Iterable[int], live: Liveness) -> list[int]:
    """The members reported live by the oracle, in iteration order."""
    oracle = as_oracle(live)
    return [sid for sid in members if oracle(sid)]


def all_live(members: Iterable[int], live: Liveness) -> bool:
    """True iff every member is reported live."""
    oracle = as_oracle(live)
    return all(oracle(sid) for sid in members)
