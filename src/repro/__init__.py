"""repro — the arbitrary tree-structured replica control protocol.

A production-quality reproduction of Bahsoun, Basmadjian & Guerraoui,
*"An Arbitrary Tree-Structured Replica Control Protocol"* (ICDCS 2008):

* :mod:`repro.core` — the arbitrary protocol: logical/physical trees,
  Algorithm 1, quorum construction, closed-form metrics, the six named
  configurations and a tuning advisor;
* :mod:`repro.quorums` — quorum-system theory (coteries, strategies, the
  optimal-load LP, availability);
* :mod:`repro.protocols` — the baselines the paper compares against
  (tree quorums, HQC, ROWA, majority, grid, finite projective planes);
* :mod:`repro.sim` — a discrete-event distributed-system simulator
  implementing the paper's Section 2.2 system model (fail-stop sites,
  lossy links, partitions, timestamps, 2PC, centralised locking);
* :mod:`repro.analysis` — figure/table sweeps used by the benchmarks.

Quickstart::

    from repro import core

    tree = core.from_spec("1-3-5")          # the paper's running example
    protocol = core.ArbitraryProtocol(tree)
    summary = core.analyse(tree, p=0.7)
    print(summary.read_cost, summary.write_load)
"""

from repro import analysis, core, protocols, quorums, sim

__version__ = "1.0.0"

__all__ = ["analysis", "core", "protocols", "quorums", "sim", "__version__"]
