"""Unit tests for the transaction data model."""

from repro.sim.transactions import (
    Operation,
    OperationType,
    Transaction,
    TransactionIdSource,
    TransactionStatus,
)


class TestOperation:
    def test_read_factory(self):
        op = Operation.read("k")
        assert op.op_type is OperationType.READ
        assert op.key == "k" and op.value is None

    def test_write_factory(self):
        op = Operation.write("k", 42)
        assert op.op_type is OperationType.WRITE
        assert op.value == 42

    def test_operations_are_immutable(self):
        op = Operation.read("k")
        try:
            op.key = "other"  # type: ignore[misc]
            raise AssertionError("Operation should be frozen")
        except AttributeError:
            pass


class TestTransaction:
    def test_starts_pending(self):
        txn = Transaction(txid=1)
        assert txn.status is TransactionStatus.PENDING

    def test_has_writes(self):
        read_only = Transaction(txid=1, operations=[Operation.read("a")])
        assert not read_only.has_writes
        mixed = Transaction(
            txid=2,
            operations=[Operation.read("a"), Operation.write("b", 1)],
        )
        assert mixed.has_writes

    def test_keys_in_first_use_order(self):
        txn = Transaction(
            txid=3,
            operations=[
                Operation.read("b"),
                Operation.write("a", 1),
                Operation.read("b"),
            ],
        )
        assert txn.keys() == ["b", "a"]


class TestTransactionIdSource:
    def test_ids_are_unique_and_increasing(self):
        source = TransactionIdSource()
        ids = [source.next_id() for _ in range(5)]
        assert ids == sorted(set(ids))

    def test_custom_start(self):
        assert TransactionIdSource(start=100).next_id() == 100

    def test_sources_are_independent(self):
        a, b = TransactionIdSource(), TransactionIdSource()
        assert a.next_id() == b.next_id() == 1
