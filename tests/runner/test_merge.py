"""Merge paths: monitors, summaries, histograms, recorders, sweeps, MC."""

import math
from collections import Counter

import pytest

from repro.analysis.sweeps import sweep_configurations
from repro.obs.recorder import TraceRecorder
from repro.obs.spans import SpanKind
from repro.obs.stats import Histogram
from repro.runner.merge import merge_availability, merge_monitors, merge_series
from repro.sim import SimulationConfig, WorkloadSpec, simulate
from repro.sim.monitor import Monitor, OperationSummary


def _run(seed: int, trace: bool = False) -> Monitor:
    from repro.core import from_spec

    config = SimulationConfig(
        tree=from_spec("1-3-5"),
        workload=WorkloadSpec(operations=40, read_fraction=0.5),
        seed=seed,
        trace=trace,
    )
    return simulate(config).monitor


# ----------------------------------------------------------------------
# OperationSummary / Monitor
# ----------------------------------------------------------------------


def test_summary_merge_adds_counters_and_concatenates_latencies():
    a = OperationSummary(
        attempted=3, succeeded=2, failed=1, total_attempts=4,
        total_quorum_size=6, total_version_quorum_size=2,
        total_replicas_contacted=8, latencies=[1.0, 2.0],
        failure_latencies=[9.0], failure_reasons=Counter({"timeout": 1}),
    )
    b = OperationSummary(
        attempted=2, succeeded=1, failed=1, total_attempts=2,
        total_quorum_size=3, total_version_quorum_size=1,
        total_replicas_contacted=4, latencies=[3.0],
        failure_latencies=[7.0], failure_reasons=Counter({"no_quorum": 1}),
    )
    merged = a.merge(b)
    assert merged is a
    assert a.attempted == 5 and a.succeeded == 3 and a.failed == 2
    assert a.total_attempts == 6
    assert a.total_quorum_size == 9
    assert a.latencies == [1.0, 2.0, 3.0]
    assert a.failure_latencies == [9.0, 7.0]
    assert a.failure_reasons == Counter({"timeout": 1, "no_quorum": 1})


def test_monitor_merge_equals_recording_all_outcomes_in_order():
    first, second = _run(1), _run(2)
    replay = Monitor(replica_ids=first._replica_ids)
    for outcome in first.outcomes + second.outcomes:
        replay.record(outcome)
    merged = merge_monitors([first, second])
    assert merged is first
    assert merged.reads == replay.reads
    assert merged.writes == replay.writes
    assert merged.outcomes == replay.outcomes
    assert merged._read_touches == replay._read_touches
    assert merged._write_touches == replay._write_touches
    assert merged.summary() == replay.summary()


def test_monitor_merge_rejects_replica_mismatch():
    a = Monitor(replica_ids=(0, 1, 2))
    b = Monitor(replica_ids=(0, 1))
    with pytest.raises(ValueError, match="replica sets"):
        a.merge(b)


def test_merge_monitors_requires_at_least_one():
    with pytest.raises(ValueError):
        merge_monitors([])


def test_monitor_merge_folds_trace_recorders():
    first, second = _run(1, trace=True), _run(2, trace=True)
    spans_before = len(first.recorder.spans)
    spans_other = len(second.recorder.spans)
    counters_other = {
        group: Counter(counts)
        for group, counts in second.recorder.counters.items()
    }
    first.merge(second)
    assert len(first.recorder.spans) == spans_before + spans_other
    for group, counts in counters_other.items():
        for name, count in counts.items():
            assert first.recorder.counters[group][name] >= count


# ----------------------------------------------------------------------
# TraceRecorder
# ----------------------------------------------------------------------


def test_recorder_merge_renumbers_span_ids():
    a, b = TraceRecorder(), TraceRecorder()
    for recorder in (a, b):
        trace = recorder.start_trace("op", at=0.0)
        child = recorder.start_span(trace, trace, "phase", SpanKind.PHASE, at=0.1)
        recorder.end_span(child, at=0.5)
        recorder.end_span(trace, at=1.0)
        recorder.count("message.sent", "ReadRequest", 2)
        recorder.observe("lock.wait", 0.25)
    a.merge(b)
    assert len(a.spans) == 4
    # Ids stay unique and child links stay internally consistent.
    assert sorted(a.spans) == sorted({s.span_id for s in a.spans.values()})
    merged_children = [s for s in a.spans.values() if s.parent_id is not None]
    for child in merged_children:
        assert child.parent_id in a.spans
        assert a.spans[child.parent_id].trace_id == child.trace_id
    assert a.counters["message.sent"]["ReadRequest"] == 4
    assert a.metrics["lock.wait"] == [0.25, 0.25]


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------


def test_histogram_merge_adds_counts_elementwise():
    a = Histogram.exponential(1.0, 2.0, 6).extend([0.5, 1.5, 3.0])
    b = Histogram.exponential(1.0, 2.0, 6).extend([1.5, 100.0])
    expected = Histogram.exponential(1.0, 2.0, 6).extend(
        [0.5, 1.5, 3.0, 1.5, 100.0]
    )
    merged = a.merge(b)
    assert merged is a
    assert a.counts == expected.counts
    assert a.total == expected.total


def test_histogram_merge_rejects_mismatched_bounds():
    a = Histogram.exponential(1.0, 2.0, 6)
    b = Histogram.exponential(1.0, 3.0, 6)
    with pytest.raises(ValueError):
        a.merge(b)


# ----------------------------------------------------------------------
# FigureSeries
# ----------------------------------------------------------------------


def test_series_merge_concatenates_size_shards():
    quantities = ("read_cost", "write_cost")
    whole = sweep_configurations(quantities, sizes=(7, 15, 31, 63), p=0.7)
    left = sweep_configurations(quantities, sizes=(7, 15), p=0.7)
    right = sweep_configurations(quantities, sizes=(31, 63), p=0.7)
    assert merge_series([left, right]) == whole


def test_series_merge_rejects_mismatched_shards():
    a = sweep_configurations(("read_cost",), sizes=(7,), p=0.7)
    with pytest.raises(ValueError):
        a.merge(sweep_configurations(("write_cost",), sizes=(7,), p=0.7))
    with pytest.raises(ValueError):
        a.merge(sweep_configurations(("read_cost",), sizes=(7,), p=0.8))


def test_merge_series_requires_at_least_one():
    with pytest.raises(ValueError):
        merge_series([])


# ----------------------------------------------------------------------
# Monte-Carlo availability
# ----------------------------------------------------------------------


def test_merge_availability_is_sample_weighted_mean():
    merged = merge_availability([0.5, 1.0], [100, 300])
    assert merged == pytest.approx(0.875)
    assert merge_availability([0.25], [10]) == 0.25
    # fsum keeps the fold exact for long chunk lists.
    fractions = [0.1] * 1000
    assert merge_availability(fractions, [7] * 1000) == pytest.approx(
        math.fsum(0.1 * 7 for _ in range(1000)) / 7000
    )


def test_merge_availability_validates_inputs():
    with pytest.raises(ValueError):
        merge_availability([0.5], [1, 2])
    with pytest.raises(ValueError):
        merge_availability([], [])
    with pytest.raises(ValueError):
        merge_availability([0.5, 0.5], [0, 0])
