"""Sharded multi-object keyspace: router, per-shard replica groups, balancer.

The protocol layers below simulate *one* replicated object; this package
scales the simulation out to a large keyspace by partitioning key indices
onto shards (:mod:`repro.shard.router`), running an independent replica
group — its own quorum system, network, sites and coordinator pool — per
shard (:mod:`repro.shard.store`), and spreading client traffic over each
pool (:mod:`repro.shard.balancer`).
"""

from repro.shard.balancer import BALANCER_POLICIES, LoadBalancer
from repro.shard.router import (
    ROUTER_KINDS,
    HashRouter,
    RangeRouter,
    ShardRouter,
    make_router,
    mix64,
)
from repro.shard.store import (
    ShardedConfig,
    ShardedResult,
    ShardedStore,
    build_sharded_simulation,
    simulate_sharded,
)

__all__ = [
    "BALANCER_POLICIES",
    "ROUTER_KINDS",
    "HashRouter",
    "LoadBalancer",
    "RangeRouter",
    "ShardRouter",
    "ShardedConfig",
    "ShardedResult",
    "ShardedStore",
    "build_sharded_simulation",
    "make_router",
    "mix64",
    "simulate_sharded",
]
