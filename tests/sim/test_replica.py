"""Unit tests for timestamps and versioned storage."""

import pytest

from repro.sim.replica import (
    ZERO_TIMESTAMP,
    Timestamp,
    VersionedStore,
    dominant,
)


class TestTimestampOrder:
    def test_higher_version_dominates(self):
        assert Timestamp(2, 5).dominates(Timestamp(1, 0))

    def test_equal_version_lower_sid_dominates(self):
        """Section 3.2.1: highest version number, lowest SID."""
        assert Timestamp(1, 2).dominates(Timestamp(1, 5))
        assert not Timestamp(1, 5).dominates(Timestamp(1, 2))

    def test_nothing_dominates_itself(self):
        ts = Timestamp(3, 1)
        assert not ts.dominates(ts)

    def test_zero_timestamp_is_oldest(self):
        assert Timestamp(1, 99).dominates(ZERO_TIMESTAMP)

    def test_sort_key_agrees_with_dominates(self):
        stamps = [Timestamp(1, 3), Timestamp(2, 9), Timestamp(2, 1), Timestamp(1, 0)]
        best = max(stamps, key=Timestamp.sort_key)
        assert all(best == other or best.dominates(other) for other in stamps)
        assert best == Timestamp(2, 1)

    def test_next_version(self):
        ts = Timestamp(4, 7).next_version(writer_sid=2)
        assert ts == Timestamp(5, 2)

    def test_dominant_helper(self):
        assert dominant([Timestamp(1, 1), Timestamp(3, 4)]) == Timestamp(3, 4)
        with pytest.raises(ValueError):
            dominant([])

    def test_str(self):
        assert str(Timestamp(3, 1)) == "v3@1"


class TestVersionedStore:
    def test_unwritten_key_has_zero_timestamp(self):
        store = VersionedStore()
        entry = store.read("k")
        assert entry.value is None
        assert entry.timestamp == ZERO_TIMESTAMP

    def test_apply_and_read(self):
        store = VersionedStore()
        assert store.apply_write("k", "v", Timestamp(1, 0))
        entry = store.read("k")
        assert entry.value == "v"
        assert entry.timestamp == Timestamp(1, 0)

    def test_stale_write_ignored(self):
        store = VersionedStore()
        store.apply_write("k", "new", Timestamp(2, 0))
        assert not store.apply_write("k", "old", Timestamp(1, 0))
        assert store.read("k").value == "new"

    def test_equal_version_higher_sid_ignored(self):
        store = VersionedStore()
        store.apply_write("k", "a", Timestamp(1, 1))
        assert not store.apply_write("k", "b", Timestamp(1, 5))
        assert store.read("k").value == "a"

    def test_equal_version_lower_sid_wins(self):
        store = VersionedStore()
        store.apply_write("k", "a", Timestamp(1, 5))
        assert store.apply_write("k", "b", Timestamp(1, 1))
        assert store.read("k").value == "b"

    def test_replay_is_idempotent(self):
        store = VersionedStore()
        store.apply_write("k", "v", Timestamp(1, 0))
        assert not store.apply_write("k", "v", Timestamp(1, 0))

    def test_counters(self):
        store = VersionedStore()
        store.apply_write("k", "a", Timestamp(1, 0))
        store.apply_write("k", "b", Timestamp(2, 0))
        store.apply_write("k", "stale", Timestamp(1, 0))
        assert store.applied_writes == 2
        assert store.ignored_writes == 1

    def test_version_of(self):
        store = VersionedStore()
        store.apply_write("k", "v", Timestamp(7, 3))
        assert store.version_of("k") == Timestamp(7, 3)
        assert store.version_of("other") == ZERO_TIMESTAMP

    def test_keys_and_len(self):
        store = VersionedStore()
        store.apply_write("a", 1, Timestamp(1, 0))
        store.apply_write("b", 2, Timestamp(1, 0))
        assert sorted(store.keys()) == ["a", "b"]
        assert len(store) == 2
