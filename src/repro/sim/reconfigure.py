"""Online tree reconfiguration: the paper's "spectrum shifting" claim.

"Our protocol enables the shifting from one configuration into another by
just modifying the structure of the tree.  There is no need to implement a
new protocol whenever the frequencies of read and write operations change."
(Conclusion.)  The paper does not define a transition protocol, so this
module supplies the missing piece: a state-transfer migration that moves a
running system from one tree shape to another.

The subtlety is that quorums of *different* trees need not intersect: a
value written through an old-tree write quorum may be invisible to every
new-tree read quorum.  :class:`TreeReconfigurer` therefore re-writes every
key through the *new* tree's quorums before the switch:

1. verify the coordinator is quiescent (no in-flight operations) — client
   traffic must be paused for the duration, exactly like a schema change
   behind the paper's centralised concurrency control;
2. for every key: read through the current (old) tree, then write the value
   back through the **new** tree (with a bumped version, so the migrated
   copy dominates everywhere);
3. swap the coordinator's quorum system to the new tree.

Both steps use the ordinary quorum operations, so the migration inherits
their fault tolerance (per-key retries, 2PC, termination protocol).  A key
whose read or write cannot complete fails the reconfiguration, leaving the
system safely on the old tree — migrated keys were *added* to new-tree
levels, which never invalidates old-tree reads.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.protocol import ArbitraryProtocol
from repro.core.tree import ArbitraryTree
from repro.sim.coordinator import OperationOutcome, QuorumCoordinator


class ReconfigStatus(enum.Enum):
    """Terminal states of a reconfiguration run."""

    SUCCESS = "success"
    NOT_QUIESCENT = "coordinator-not-quiescent"
    READ_FAILED = "key-read-failed"
    WRITE_FAILED = "key-write-failed"


@dataclass
class ReconfigOutcome:
    """What a reconfiguration did."""

    status: ReconfigStatus
    new_tree: ArbitraryTree
    keys_migrated: int = 0
    keys_total: int = 0
    failed_key: Any = None
    started_at: float = 0.0
    finished_at: float = 0.0
    operations_used: int = 0

    @property
    def success(self) -> bool:
        """True iff the quorum-system switch happened."""
        return self.status is ReconfigStatus.SUCCESS

    @property
    def duration(self) -> float:
        """Simulated time the migration took."""
        return self.finished_at - self.started_at


DoneCallback = Callable[[ReconfigOutcome], None]


@dataclass
class _MigrationState:
    new_tree: ArbitraryTree
    new_system: ArbitraryProtocol
    keys: list
    on_done: DoneCallback
    outcome: ReconfigOutcome
    index: int = 0
    values: dict = field(default_factory=dict)


class TreeReconfigurer:
    """Drives tree-shape migrations for one coordinator.

    Parameters
    ----------
    coordinator:
        The coordinator whose quorum system will be migrated.  It must
        currently be an :class:`~repro.core.protocol.ArbitraryProtocol`
        (reconfiguration between arbitrary-protocol trees is what the paper
        promises; migrating *to* the protocol from a baseline would need
        write-all state transfer instead).
    """

    def __init__(self, coordinator: QuorumCoordinator) -> None:
        self._coordinator = coordinator

    def reconfigure(
        self,
        new_tree: ArbitraryTree,
        keys: Sequence,
        on_done: DoneCallback,
    ) -> None:
        """Migrate to ``new_tree``; ``on_done`` fires exactly once.

        ``keys`` must cover every key whose latest value matters (the
        engine's workload uses a known key space; a production system would
        scan the keyspace).  The new tree must host the same replica SIDs
        ``0..n-1`` — reconfiguration changes the *shape*, not the fleet.
        """
        now = self._coordinator.scheduler.now
        outcome = ReconfigOutcome(
            status=ReconfigStatus.SUCCESS,
            new_tree=new_tree,
            keys_total=len(keys),
            started_at=now,
            finished_at=now,
        )
        if new_tree.n != len(self._coordinator.system_universe()):
            raise ValueError(
                f"new tree hosts {new_tree.n} replicas, the system has "
                f"{len(self._coordinator.system_universe())}"
            )
        if not self._coordinator.is_quiescent():
            outcome.status = ReconfigStatus.NOT_QUIESCENT
            on_done(outcome)
            return
        state = _MigrationState(
            new_tree=new_tree,
            new_system=ArbitraryProtocol(new_tree),
            keys=list(keys),
            on_done=on_done,
            outcome=outcome,
        )
        self._migrate_next(state)

    # ------------------------------------------------------------------
    # per-key pipeline: read (old tree) -> write (new tree)
    # ------------------------------------------------------------------

    def _migrate_next(self, state: _MigrationState) -> None:
        if state.index >= len(state.keys):
            self._finish(state)
            return
        key = state.keys[state.index]
        state.outcome.operations_used += 1
        self._coordinator.read(
            key, lambda result: self._read_done(state, key, result)
        )

    def _read_done(
        self, state: _MigrationState, key: Any, result: OperationOutcome
    ) -> None:
        if not result.success:
            state.outcome.status = ReconfigStatus.READ_FAILED
            state.outcome.failed_key = key
            self._finish(state)
            return
        if result.value is None:
            # never written: nothing to transfer
            state.index += 1
            self._migrate_next(state)
            return
        state.outcome.operations_used += 1
        self._coordinator.write_with_system(
            key,
            result.value,
            state.new_system,
            lambda write_result: self._write_done(state, key, write_result),
        )

    def _write_done(
        self, state: _MigrationState, key: Any, result: OperationOutcome
    ) -> None:
        if not result.success:
            state.outcome.status = ReconfigStatus.WRITE_FAILED
            state.outcome.failed_key = key
            self._finish(state)
            return
        state.outcome.keys_migrated += 1
        state.index += 1
        self._migrate_next(state)

    def _finish(self, state: _MigrationState) -> None:
        if state.outcome.status is ReconfigStatus.SUCCESS:
            self._coordinator.set_system(state.new_system)
        state.outcome.finished_at = self._coordinator.scheduler.now
        state.on_done(state.outcome)
