"""Tests for crossover finding, pinned to the paper's Section 4 claims."""

import pytest

from repro.analysis.crossover import (
    expected_write_crossover_p,
    first_crossing,
    quantity_crossover_n,
)
from repro.core.config import Configuration


class TestFirstCrossing:
    def test_simple_crossing(self):
        assert first_crossing(lambda x: x, lambda x: 100, [1, 3, 7, 9]) == 1

    def test_crossing_mid_sweep(self):
        assert first_crossing(lambda x: -x, lambda x: -5, [1, 3, 7, 9]) == 7

    def test_requires_staying_below(self):
        f_values = {1: 0, 3: 10, 7: 0, 9: 0}
        assert first_crossing(
            lambda x: f_values[x], lambda x: 5, [1, 3, 7, 9]
        ) == 7

    def test_none_when_never_crossing(self):
        assert first_crossing(lambda x: 9, lambda x: 5, [1, 2, 3]) is None


class TestPaperCrossovers:
    SIZES = (15, 31, 63, 127, 255, 511)

    def test_hqc_read_load_overtakes_arbitrary(self):
        """HQC's n^-0.37 dips below ARBITRARY's 1/4 past n ~ 43."""
        crossing = quantity_crossover_n(
            Configuration.HQC, Configuration.ARBITRARY,
            "read_load", self.SIZES,
        )
        assert crossing == 63  # first swept size past the analytic 42.6

    def test_hqc_beats_binary_early(self):
        """The paper's 'least of the first four when n > 15' vs BINARY."""
        crossing = quantity_crossover_n(
            Configuration.HQC, Configuration.BINARY,
            "read_load", self.SIZES,
        )
        assert crossing is not None and crossing <= 31

    def test_arbitrary_write_load_beats_everyone_from_31(self):
        for rival in (
            Configuration.BINARY,
            Configuration.HQC,
            Configuration.UNMODIFIED,
        ):
            crossing = quantity_crossover_n(
                Configuration.ARBITRARY, rival, "write_load", self.SIZES,
            )
            assert crossing is not None and crossing <= 31, rival

    def test_expected_write_crossover_near_08(self):
        """ARBITRARY's expected write load overtakes HQC's around p ~ 0.8
        at large n (the paper's 'p < 0.8' discussion)."""
        crossing = expected_write_crossover_p(511)
        assert crossing is not None
        assert 0.72 <= crossing <= 0.88

    def test_small_n_arbitrary_wins_at_the_papers_p(self):
        """At small n ARBITRARY already has the smallest expected write
        load at the paper's plotting point p = 0.7 (the crossover sits
        well below 0.7, unlike at large n where it is ~0.8)."""
        crossing = expected_write_crossover_p(31)
        assert crossing is not None and crossing <= 0.7
        large_crossing = expected_write_crossover_p(511)
        assert large_crossing is not None and large_crossing > crossing
