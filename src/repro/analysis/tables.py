"""Plain-text rendering of figure series and tables.

The paper's evaluation consists of line charts; the benchmark harness prints
the underlying numbers as aligned text tables (one row per system size, one
column per configuration) so the series can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.sweeps import FigureSeries
from repro.core.config import Configuration


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    rendered_rows = [
        [_format_cell(cell) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(header).rjust(width) for header, width in zip(headers, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3e}"
        return f"{cell:.4f}".rstrip("0").rstrip(".")
    return str(cell)


def format_series(
    figure: FigureSeries,
    quantity: str,
    title: str | None = None,
    configs: Sequence[Configuration] | None = None,
) -> str:
    """Render one quantity of a figure sweep: rows = sizes, cols = configs.

    Each cell shows the value at the configuration's snapped size; the row
    label is the requested ``n``.
    """
    if configs is None:
        configs = list(figure.series)
    first_config = configs[0]
    points = figure.series[first_config][quantity]
    headers = ["n", *(str(config) for config in configs)]
    rows = []
    for i, point in enumerate(points):
        row: list[object] = [point.requested_n]
        for config in configs:
            row.append(figure.series[config][quantity][i].value)
        rows.append(row)
    return format_table(headers, rows, title=title)
