"""SelectionIndex unit tests: dispatch, caching, fallback, epoch reuse."""

import random

import pytest

from repro.core import from_spec
from repro.core.protocol import ArbitraryProtocol
from repro.protocols.zoo import quorum_system
from repro.quorums.selection import SelectionIndex, select_uniform_reference
from repro.sim import SimulationConfig, WorkloadSpec
from repro.sim.engine import build_simulation


@pytest.fixture
def system():
    return ArbitraryProtocol(from_spec("1-3-5"))


def test_packed_selection_matches_reference_streams(system):
    index = SelectionIndex(system)
    quorums = tuple(system.materialise("read", 10_000))
    universe = sorted(system.universe)
    live_rng = random.Random(5)
    rng_index, rng_reference = random.Random(99), random.Random(99)
    for _ in range(200):
        live = tuple(s for s in universe if live_rng.random() < 0.8)
        assert index.select("read", live, rng_index) == select_uniform_reference(
            quorums, live, rng_reference
        )


def test_counters_track_cache_behaviour(system):
    index = SelectionIndex(system)
    rng = random.Random(0)
    live = tuple(sorted(system.universe))
    index.select("read", live, rng)
    assert (index.packed_selects, index.cache_misses, index.cache_hits) == (1, 1, 0)
    index.select("read", live, rng)
    assert (index.packed_selects, index.cache_misses, index.cache_hits) == (2, 1, 1)
    index.select("read", live[:-1], rng)
    assert index.cache_misses == 2
    assert index.fallback_selects == 0


def test_cache_flushes_at_limit(system):
    index = SelectionIndex(system, cache_limit=2)
    universe = tuple(sorted(system.universe))
    for drop in range(4):
        live = universe[:drop] + universe[drop + 1:]
        index.select("read", live, random.Random(0))
    assert len(index._viable) <= 2


def test_rng_none_returns_first_viable(system):
    quorums = tuple(system.materialise("read", 10_000))
    index = SelectionIndex(system)
    live = tuple(sorted(system.universe))
    assert index.select("read", live) == select_uniform_reference(quorums, live)


def test_empty_and_dead_live_sets_return_none(system):
    index = SelectionIndex(system)
    assert index.select("read", ()) is None
    assert index.select("write", (), random.Random(0)) is None


def test_unknown_sids_in_live_set_are_ignored(system):
    index = SelectionIndex(system)
    live = tuple(sorted(system.universe))
    assert index.select("read", live + (999,), random.Random(3)) == index.select(
        "read", live, random.Random(3)
    )


def test_oversized_system_falls_back_to_structural_selector():
    majority = quorum_system("majority", 15)  # C(15, 8) = 6435 read quorums
    index = SelectionIndex(majority, max_quorums=100)
    live = tuple(sorted(majority.universe))
    picked = index.select("read", live, random.Random(1))
    assert picked == majority.select_read_quorum(set(live), random.Random(1))
    assert index.fallback_selects == 1
    assert index.packed_selects == 0
    assert not index.supported("read")


def test_callable_liveness_routes_to_fallback(system):
    index = SelectionIndex(system)
    live = set(system.universe)
    picked = index.select("read", live.__contains__, random.Random(2))
    assert picked is not None
    assert index.fallback_selects == 1


def test_select_read_write_helpers_and_validation(system):
    index = SelectionIndex(system)
    live = tuple(sorted(system.universe))
    assert index.select_read(live) == index.select("read", live)
    assert index.select_write(live) == index.select("write", live)
    with pytest.raises(ValueError):
        index.select("commit", live)
    with pytest.raises(ValueError):
        SelectionIndex(system, max_quorums=0)
    with pytest.raises(ValueError):
        SelectionIndex(system, cache_limit=0)


# ----------------------------------------------------------------------
# coordinator integration: dispatch gating and epoch-cached liveness
# ----------------------------------------------------------------------


def _build(**overrides):
    settings = dict(
        tree=from_spec("1-3-5"),
        workload=WorkloadSpec(operations=50, read_fraction=0.5),
        seed=3,
    )
    settings.update(overrides)
    return build_simulation(SimulationConfig(**settings))


def _drain(scheduler, workload, operations):
    workload.start()
    while workload.completed < operations:
        assert scheduler.step()


def test_simulation_runs_on_the_packed_path():
    scheduler, workload, monitor, _, _ = _build()
    _drain(scheduler, workload, 50)
    (coordinator,) = workload.coordinators
    assert coordinator.selector is not None
    assert coordinator.selector.packed_selects > 0
    assert coordinator.selector.fallback_selects == 0
    assert monitor.total_operations == 50


def test_epoch_cache_serves_steady_state_from_one_miss():
    scheduler, workload, _, _, _ = _build()
    _drain(scheduler, workload, 50)
    (coordinator,) = workload.coordinators
    selector = coordinator.selector
    # No crash/recovery ever bumped the epoch: one viable-row build per op.
    assert selector.cache_misses <= 2  # read + write tables
    assert selector.cache_hits == selector.packed_selects - selector.cache_misses


def test_non_uniform_protocols_keep_their_structural_selectors():
    system = quorum_system("tree-quorum", 7)
    config = SimulationConfig(
        system=system,
        workload=WorkloadSpec(operations=10, read_fraction=0.5),
        seed=3,
    )
    _, workload, _, _, _ = build_simulation(config)
    (coordinator,) = workload.coordinators
    assert coordinator.selector is None


def test_selection_dispatch_preserves_measured_distribution():
    """The packed path changes *how fast* selection runs, not what it picks.

    Uniform-over-viable is the arbitrary protocol's structural
    distribution (the RNG *streams* differ — the reservoir scan draws one
    randrange per viable quorum, the index exactly one), so the measured
    mean quorum costs of a failure-free run must agree closely whether the
    selector is on or forced off.
    """
    workload_spec = WorkloadSpec(operations=600, read_fraction=0.5)

    scheduler, workload, fast_monitor, _, _ = _build(
        seed=11, workload=workload_spec
    )
    assert workload.coordinators[0].selector is not None
    _drain(scheduler, workload, 600)

    scheduler, workload, slow_monitor, _, _ = _build(
        seed=11, workload=workload_spec
    )
    for coordinator in workload.coordinators:
        coordinator._selector = None  # force the structural fallback
    _drain(scheduler, workload, 600)

    assert fast_monitor.reads.mean_cost == pytest.approx(
        slow_monitor.reads.mean_cost, rel=0.1
    )
    assert fast_monitor.writes.mean_cost == pytest.approx(
        slow_monitor.writes.mean_cost, rel=0.1
    )
