"""Unit tests for strategies and induced loads (Definitions 2.4-2.5)."""

import pytest

from repro.quorums.base import SetSystem
from repro.quorums.strategy import Strategy, induced_loads, system_load


@pytest.fixture
def rowa_reads():
    return SetSystem([{0}, {1}, {2}, {3}])


@pytest.fixture
def levels_135():
    """Read quorums of the paper's 1-3-5 tree (3 x 5 = 15 quorums)."""
    return SetSystem(
        [{a, b} for a in range(3) for b in range(3, 8)],
        universe=range(8),
    )


class TestStrategyValidation:
    def test_weights_must_match_quorum_count(self, rowa_reads):
        with pytest.raises(ValueError, match="weights"):
            Strategy(rowa_reads, (0.5, 0.5))

    def test_weights_must_sum_to_one(self, rowa_reads):
        with pytest.raises(ValueError, match="sum"):
            Strategy(rowa_reads, (0.5, 0.5, 0.5, 0.5))

    def test_weights_must_be_non_negative(self, rowa_reads):
        with pytest.raises(ValueError, match="non-negative"):
            Strategy(rowa_reads, (1.5, -0.5, 0.0, 0.0))

    def test_valid_strategy(self, rowa_reads):
        Strategy(rowa_reads, (0.25, 0.25, 0.25, 0.25))


class TestUniformStrategy:
    def test_uniform_weights(self, rowa_reads):
        strategy = Strategy.uniform(rowa_reads)
        assert all(w == pytest.approx(0.25) for w in strategy.weights)

    def test_uniform_rowa_load(self, rowa_reads):
        strategy = Strategy.uniform(rowa_reads)
        assert strategy.induced_load() == pytest.approx(1 / 4)

    def test_uniform_135_read_load(self, levels_135):
        """The uniform read strategy loads the thin level at 1/3."""
        strategy = Strategy.uniform(levels_135)
        loads = strategy.element_loads()
        for sid in range(3):
            assert loads[sid] == pytest.approx(1 / 3)
        for sid in range(3, 8):
            assert loads[sid] == pytest.approx(1 / 5)
        assert strategy.induced_load() == pytest.approx(1 / 3)


class TestElementLoads:
    def test_load_of_absent_element_is_zero(self):
        system = SetSystem([{0}], universe={0, 1})
        strategy = Strategy.uniform(system)
        assert strategy.element_load(1) == 0.0

    def test_element_load_matches_mapping(self, levels_135):
        strategy = Strategy.uniform(levels_135)
        loads = strategy.element_loads()
        for element in levels_135.universe:
            assert strategy.element_load(element) == pytest.approx(loads[element])

    def test_loads_sum_to_expected_quorum_size(self, levels_135):
        """sum_i l_w(i) = E[|Q|] for any strategy (double counting)."""
        strategy = Strategy.uniform(levels_135)
        assert sum(strategy.element_loads().values()) == pytest.approx(
            strategy.expected_quorum_size()
        )

    def test_expected_quorum_size(self, levels_135):
        assert Strategy.uniform(levels_135).expected_quorum_size() == pytest.approx(2.0)


class TestFromMapping:
    def test_partial_mapping_fills_zeros(self, rowa_reads):
        strategy = Strategy.from_mapping(rowa_reads, {frozenset({0}): 1.0})
        assert strategy.weights == (1.0, 0.0, 0.0, 0.0)
        assert strategy.induced_load() == pytest.approx(1.0)

    def test_skewed_strategy_load(self, levels_135):
        # all mass on one quorum loads its two members fully
        target = levels_135.quorums[0]
        strategy = Strategy.from_mapping(levels_135, {target: 1.0})
        assert strategy.induced_load() == pytest.approx(1.0)


class TestModuleHelpers:
    def test_system_load_uniform_default(self):
        assert system_load([{0}, {1}]) == pytest.approx(0.5)

    def test_system_load_explicit_weights(self):
        assert system_load([{0}, {1}], weights=[0.9, 0.1]) == pytest.approx(0.9)

    def test_induced_loads_helper(self):
        system = SetSystem([{0, 1}, {1, 2}])
        loads = induced_loads(system, [0.5, 0.5])
        assert loads == {0: 0.5, 1: 1.0, 2: 0.5}
